"""Fuzzing the text-facing parsers: they must reject garbage, not crash.

Every user-facing parser (cycle notation, gate names, pattern strings,
circuit records) either returns a valid object or raises a library error
-- never an unhandled TypeError/IndexError/ValueError from internals.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.core.circuit import Circuit
from repro.gates.gate import Gate
from repro.io import circuit_from_dict
from repro.mvl.patterns import pattern_from_string
from repro.perm.permutation import Permutation

LIBRARY_ERRORS = (ReproError,)

text = st.text(
    alphabet=st.sampled_from(list("()0123456789,VF+_ABC vx")), max_size=24
)


class TestCycleStringFuzz:
    @given(text=text)
    @settings(max_examples=300, deadline=None)
    def test_parse_or_clean_error(self, text):
        try:
            perm = Permutation.from_cycle_string(8, text)
        except LIBRARY_ERRORS:
            return
        # On success the result must round-trip semantically.
        assert perm.degree == 8
        again = Permutation.from_cycle_string(8, perm.cycle_string())
        assert again == perm

    @given(degree=st.integers(min_value=1, max_value=64), text=text)
    @settings(max_examples=200, deadline=None)
    def test_any_degree(self, degree, text):
        try:
            perm = Permutation.from_cycle_string(degree, text)
        except LIBRARY_ERRORS:
            return
        assert perm.degree == degree


class TestGateNameFuzz:
    @given(text=text)
    @settings(max_examples=300, deadline=None)
    def test_parse_or_clean_error(self, text):
        try:
            gate = Gate.from_name(text, 3)
        except LIBRARY_ERRORS:
            return
        assert gate.name == text.strip() or gate.name  # well-formed result

    @given(text=text)
    @settings(max_examples=150, deadline=None)
    def test_circuit_from_names(self, text):
        try:
            circuit = Circuit.from_names(text, 3)
        except LIBRARY_ERRORS:
            return
        assert circuit.n_qubits == 3


class TestPatternStringFuzz:
    @given(text=text)
    @settings(max_examples=300, deadline=None)
    def test_parse_or_clean_error(self, text):
        try:
            pattern = pattern_from_string(text)
        except LIBRARY_ERRORS:
            return
        assert pattern.n_qubits >= 1


class TestCircuitRecordFuzz:
    @given(
        record=st.fixed_dictionaries(
            {},
            optional={
                "n_qubits": st.one_of(st.integers(-2, 5), st.text(max_size=3)),
                "gates": st.lists(text, max_size=4),
            },
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_malformed_records_rejected_cleanly(self, record):
        try:
            circuit = circuit_from_dict(record)
        except LIBRARY_ERRORS:
            return
        assert isinstance(circuit, Circuit)
