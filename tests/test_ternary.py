"""MV synthesis end to end: ternary/quaternary libraries, both backends.

The binary pipeline is pinned by ``test_golden_tables.py``; this module
exercises the radix generalization -- the Di-Wei ternary and
Muthukrishnan-Stroud quaternary digit libraries -- through the same
layers: library construction, cascade search / batch synthesis, the
decomposition backend cross-check, store round-trips with
dimension-naming mismatch errors, and JSON result serialization.
"""

import pytest

from repro.core.batch import BatchSynthesizer
from repro.core.decompose import decompose_target
from repro.core.mce import express, express_all
from repro.core.search import CascadeSearch
from repro.core.store import dump_search, loads_search, read_header
from repro.errors import (
    SpecificationError,
    StoreMismatchError,
)
from repro.gates.library import GateLibrary
from repro.gates.mv import MVGate, mv_library_gates
from repro.gates.quaternary import QUATERNARY_FAMILY, quaternary_library
from repro.gates.ternary import TERNARY_FAMILY, ternary_library
from repro.io import parse_target, result_from_dict, result_to_dict
from repro.mvl.labels import label_space
from repro.perm.permutation import Permutation
from repro.sim.verify import verify_synthesis


@pytest.fixture(scope="module")
def tlib():
    return ternary_library(2)


@pytest.fixture(scope="module")
def tsearch(tlib):
    search = CascadeSearch(tlib, track_parents=True)
    search.extend_to(4)
    return search


@pytest.fixture(scope="module")
def tbatch(tsearch):
    return BatchSynthesizer(tsearch, cost_bound=4)


class TestLibraryConstruction:
    def test_ternary_width2_inventory(self, tlib):
        # 5 non-identity local permutations x 2 wires, then 5 controlled
        # versions x 2 ordered (target, control) pairs.
        assert len(tlib.gates) == 20
        assert tlib.family == TERNARY_FAMILY
        assert tlib.space.radix == 3
        assert tlib.space.size == 9
        costs = [entry.cost for entry in tlib.gates]
        assert costs == [1] * 10 + [2] * 10

    def test_quaternary_width2_inventory(self):
        qlib = quaternary_library(2)
        # 3 shifts + 6 transpositions per wire, controlled per pair.
        assert len(qlib.gates) == 36
        assert qlib.family == QUATERNARY_FAMILY
        assert qlib.space.size == 16

    def test_gate_names_roundtrip(self, tlib):
        for entry in tlib.gates:
            gate = entry.gate
            again = MVGate.from_name(gate.name, 2, 3)
            assert again == gate

    def test_every_gate_is_a_space_permutation(self, tlib):
        space = tlib.space
        for entry in tlib.gates:
            perm = entry.gate.permutation(space)
            assert sorted(perm.images) == list(range(space.size))

    def test_no_banned_sets_in_digit_space(self, tlib):
        # Digit patterns have no mixed values, so nothing is banned and
        # every cascade is a reasonable product.
        assert all(entry.banned_mask == 0 for entry in tlib.gates)
        assert tlib.space.banned_mask([0, 1]) == 0

    def test_library_space_too_wide_is_rejected(self):
        from repro.errors import InvalidGateError

        with pytest.raises(InvalidGateError):
            mv_library_gates(6, 3)  # 3**6 = 729 > 256 labels


class TestSearchBackend:
    def test_express_finds_controlled_gate_at_cost_2(self, tlib):
        gate = MVGate.from_name("CX+1_AB", 2, 3)
        target = gate.permutation(tlib.space)
        result = express(target, tlib, cost_bound=3)
        assert result.cost == 2
        assert verify_synthesis(result)

    def test_express_all_results_verify(self, tlib, tsearch):
        target = parse_target("(1,2,3)", n_qubits=2, radix=3)
        results = express_all(target, tlib, cost_bound=4, search=tsearch)
        assert results
        for result in results:
            assert result.not_mask == 0
            assert verify_synthesis(result)

    def test_batch_matches_express(self, tlib, tsearch, tbatch):
        target = parse_target("(1,4,7)", n_qubits=2, radix=3)
        direct = express(target, tlib, cost_bound=4, search=tsearch)
        batched = tbatch.synthesize(target)
        assert batched.cost == direct.cost
        assert batched.circuit.permutation(tlib.space) == target

    def test_not_layer_enumeration_is_refused(self, tbatch):
        with pytest.raises(SpecificationError):
            tbatch.targets_at_cost(1, include_not_layers=True)


class TestDecompositionBackend:
    @pytest.mark.parametrize(
        "spec", ["(1,2)", "(1,2,3)", "(1,4,7)", "(8,9)", "(1,2)(4,5)(7,8)"]
    )
    def test_cross_checks_search(self, spec, tlib, tbatch):
        target = parse_target(spec, n_qubits=2, radix=3)
        searched = tbatch.synthesize(target)
        decomposed = decompose_target(target, tlib)
        assert decomposed.circuit.permutation(tlib.space) == target
        assert decomposed.cost >= searched.cost

    def test_random_permutations_decompose(self, tlib):
        # A fixed spread of 9-label permutations, including max-length
        # cycles the bound-4 search cannot reach.
        specs = [
            "(1,2,3,4,5,6,7,8,9)",
            "(1,9)(2,8)(3,7)(4,6)",
            "(2,4)(3,7)(6,8)",
        ]
        for spec in specs:
            target = Permutation.from_cycle_string(9, spec)
            result = decompose_target(target, tlib)
            assert result.circuit.permutation(tlib.space) == target
            assert result.cost == sum(
                tlib.by_name(g.name).cost for g in result.circuit.gates
            )

    def test_quaternary_decomposition(self):
        qlib = quaternary_library(2)
        target = Permutation.from_cycle_string(16, "(1,16)(2,15)")
        result = decompose_target(target, qlib)
        assert result.circuit.permutation(qlib.space) == target

    def test_binary_library_is_rejected(self):
        with pytest.raises(SpecificationError):
            decompose_target(
                Permutation.from_cycle_string(8, "(1,2)"), GateLibrary(3)
            )


class TestStoreRoundTrip:
    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_reopen_preserves_mv_provenance(
        self, tsearch, tlib, version, tmp_path
    ):
        blob = dump_search(tsearch, format_version=version)
        path = tmp_path / f"ternary-v{version}.rpro"
        path.write_bytes(blob)
        header = read_header(path)
        assert header.radix == 3
        assert header.library_family == TERNARY_FAMILY
        reopened = loads_search(blob, tlib)
        assert list(reopened.stats().level_sizes) == [1, 10, 35, 140, 571]

    def test_rebuilt_library_serves_without_explicit_library(
        self, tsearch, tmp_path
    ):
        from repro.io import open_store

        path = tmp_path / "ternary.rpro"
        path.write_bytes(dump_search(tsearch, format_version=2))
        _header, library, search = open_store(path)
        assert library.family == TERNARY_FAMILY
        assert library.space.radix == 3
        batch = BatchSynthesizer(search, cost_bound=4)
        target = parse_target("(8,9)", n_qubits=2, radix=3)
        assert batch.synthesize(target).cost == 2

    def test_radix_mismatch_is_named(self, tsearch):
        blob = dump_search(tsearch, format_version=2)
        with pytest.raises(StoreMismatchError, match="radix mismatch"):
            loads_search(blob, GateLibrary(2))

    def test_radix_mismatch_other_direction(self, library3_store_blob, tlib):
        with pytest.raises(StoreMismatchError, match="radix mismatch"):
            loads_search(library3_store_blob, tlib)

    def test_width_mismatch_is_named(self, tsearch):
        blob = dump_search(tsearch, format_version=2)
        wide = CascadeSearch(ternary_library(3))
        with pytest.raises(StoreMismatchError, match="width mismatch"):
            loads_search(blob, wide.library)

    def test_cross_radix_mv_open_names_radix(self, tsearch):
        blob = dump_search(tsearch, format_version=2)
        with pytest.raises(StoreMismatchError, match="radix mismatch"):
            loads_search(blob, quaternary_library(2))

    def test_family_mismatch_is_named(self, tsearch):
        blob = dump_search(tsearch, format_version=2)
        other = GateLibrary.from_gates(
            mv_library_gates(2, 3), label_space(2, radix=3), "custom-ternary"
        )
        with pytest.raises(StoreMismatchError, match="library mismatch"):
            loads_search(blob, other)


@pytest.fixture(scope="module")
def library3_store_blob():
    search = CascadeSearch(GateLibrary(2), track_parents=True)
    search.extend_to(2)
    return dump_search(search, format_version=2)


class TestResultSerialization:
    def test_mv_record_roundtrips(self, tbatch, tlib):
        target = parse_target("(1,2,3)", n_qubits=2, radix=3)
        result = tbatch.synthesize(target)
        record = result_to_dict(result)
        assert record["radix"] == 3
        again = result_from_dict(record)
        assert again.target == target
        assert again.cost == result.cost
        assert again.circuit.permutation(tlib.space) == target
        assert again.cascade_permutation == target

    def test_binary_record_has_no_radix_key(self):
        library = GateLibrary(3)
        target = parse_target("toffoli")
        result = express(target, library, cost_bound=5)
        record = result_to_dict(result)
        assert "radix" not in record

    def test_tampered_mv_record_fails_loudly(self, tbatch):
        target = parse_target("(8,9)", n_qubits=2, radix=3)
        record = result_to_dict(tbatch.synthesize(target))
        record["cost"] = record["cost"] + 1
        with pytest.raises(SpecificationError):
            result_from_dict(record)

    def test_parse_target_named_catalog_is_binary_only(self):
        with pytest.raises(Exception):
            parse_target("toffoli", n_qubits=2, radix=3)


class TestPlanProjection:
    def test_mv_store_header_caps_projection(self, tsearch, tmp_path):
        from repro.core.plan import plan_resources

        path = tmp_path / "ternary.rpro"
        path.write_bytes(dump_search(tsearch, format_version=2))
        header = read_header(path)
        import math

        plan = plan_resources(6, header=header)
        assert plan.projected_rows <= math.factorial(9)
        assert any("radix-3" in note for note in plan.notes)

    def test_binary_plan_notes_unchanged(self):
        from repro.core.plan import plan_resources

        plan = plan_resources(7)
        assert plan.projected_rows == 689402
        assert any("paper's 3-qubit closure" in n for n in plan.notes)
