"""Named scenario specifications: the traffic shapes load tests share.

A scenario spec is a small checked-in TOML or JSON file (see the
repository's ``scenarios/`` directory) that names one traffic shape --
steady interactive, bursty batch, hot-key skew over store aliases,
mixed multi-store, pathological cost bounds -- precisely enough that
every PR's load numbers are measured under *identical* requests.  The
spec is pure data; :mod:`repro.scenario.workload` turns it plus a seed
into a deterministic request stream.

Top-level fields::

    name        = "steady_interactive"   # required, non-empty
    description = "..."                  # optional prose
    seed        = 1                      # default RNG seed (CLI --seed overrides)
    requests    = 200                    # stream length (CLI --requests overrides)
    concurrency = 4                      # worker threads (CLI overrides)
    targets     = ["peres", "(5,7,6,8)"] # pool of target specs
    batch_size  = 8                      # targets per synth-batch request

    [arrival]                            # when each request is issued
    shape = "steady"                     # closed | steady | bursty
    rate  = 200.0                        # req/s (steady)
    burst = 16                           # requests per burst (bursty)
    pause = 0.05                         # seconds between bursts (bursty)

    [ops]                                # op -> relative weight
    synth = 8
    synth-batch = 1

    [stores]                             # selector -> weight (optional)
    deep = 9                             # skewed weights model hot keys
    shallow = 1

    [params]                             # extra query params (optional)
    cost_bound = 2
    allow_not = true

    [slo]                                # pass/fail bars (optional)
    p50_ms = 50.0
    p99_ms = 250.0
    max_error_rate = 0.0
    max_shed_rate  = 0.0
    allowed_error_codes = ["cost-bound-exceeded"]

``closed`` arrival issues requests as fast as the workers can (offsets
all zero); ``steady`` spaces request *i* at ``i / rate`` seconds;
``bursty`` issues ``burst`` requests at once, bursts ``pause`` seconds
apart.  Offsets only pace the run when timing is requested -- the
request *content* is identical either way.

Every validation failure raises :class:`~repro.errors.SpecificationError`
with the offending field named -- never a traceback-only TypeError --
so a bad spec fails a CI job with a one-line diagnosis
(``tests/test_fuzz_parsers.py`` pins this for adversarial inputs).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import InvalidPermutationError, SpecificationError
from repro.server.protocol import OPERATIONS

#: Arrival shapes a spec may declare.
ARRIVAL_SHAPES = ("closed", "steady", "bursty")

#: Ops that draw targets from the pool (the pool is required for them).
TARGET_OPS = frozenset({"synth", "synth-batch"})

#: Spec filename extensions the loader understands.
SPEC_SUFFIXES = (".toml", ".json")

_TOP_KEYS = frozenset({
    "name", "description", "seed", "requests", "concurrency", "targets",
    "batch_size", "arrival", "ops", "stores", "params", "slo",
})
_ARRIVAL_KEYS = frozenset({"shape", "rate", "burst", "pause"})
_PARAM_KEYS = frozenset({"cost_bound", "allow_not"})
_SLO_KEYS = frozenset({
    "p50_ms", "p99_ms", "max_error_rate", "max_shed_rate",
    "allowed_error_codes",
})


@dataclass(frozen=True)
class Arrival:
    """When each request in the stream is issued."""

    shape: str = "closed"
    rate: float = 100.0
    burst: int = 16
    pause: float = 0.05


@dataclass(frozen=True)
class SloBars:
    """Per-scenario pass/fail bars the reporter asserts."""

    p50_ms: float | None = None
    p99_ms: float | None = None
    max_error_rate: float | None = None
    max_shed_rate: float | None = None
    #: Error codes that do not count against ``max_error_rate`` (a
    #: pathological-cost-bound scenario *expects* cost-bound-exceeded).
    allowed_error_codes: tuple[str, ...] = ()


@dataclass(frozen=True)
class ScenarioSpec:
    """One parsed, validated scenario (immutable)."""

    name: str
    description: str = ""
    seed: int = 0
    requests: int = 100
    concurrency: int = 4
    arrival: Arrival = field(default_factory=Arrival)
    #: ``(op, weight)`` pairs in spec order (weights are relative).
    ops: tuple[tuple[str, float], ...] = (("synth", 1.0),)
    #: Pool of target spec strings drawn from for synth/synth-batch.
    targets: tuple[str, ...] = ()
    batch_size: int = 8
    #: ``(store selector, weight)`` pairs; empty means no selector is
    #: sent (a single-store server resolves that to its sole store).
    stores: tuple[tuple[str, float], ...] = ()
    #: Extra query params sent with every store query.
    params: tuple[tuple[str, object], ...] = ()
    slo: SloBars = field(default_factory=SloBars)


def _fail(name: str, message: str) -> SpecificationError:
    return SpecificationError(f"scenario field {name!r}: {message}")


def _check_str(data: dict, key: str, default: str) -> str:
    value = data.get(key, default)
    if not isinstance(value, str):
        raise _fail(key, "must be a string")
    return value


def _check_int(
    data: dict, key: str, default: int, minimum: int
) -> int:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(key, "must be an integer")
    if value < minimum:
        raise _fail(key, f"must be >= {minimum}, got {value}")
    return value


def _check_number(
    data: dict, key: str, default: float, minimum: float,
    maximum: float | None = None,
) -> float:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(key, "must be a number")
    value = float(value)
    if not math.isfinite(value):
        raise _fail(key, "must be finite")
    if value < minimum:
        raise _fail(key, f"must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise _fail(key, f"must be <= {maximum}, got {value}")
    return value


def _check_keys(data: dict, allowed: frozenset, where: str) -> None:
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise SpecificationError(
            f"unknown scenario field(s) in {where}: " + ", ".join(
                repr(key) for key in unknown
            )
        )


def _parse_weight_table(
    data: object, where: str, allowed_keys: frozenset | None
) -> tuple[tuple[str, float], ...]:
    """A ``{name: weight}`` table as validated ``(name, weight)`` pairs."""
    if not isinstance(data, dict) or not data:
        raise SpecificationError(
            f"scenario {where} must be a non-empty table of weights"
        )
    pairs: list[tuple[str, float]] = []
    for key, raw in data.items():
        if not isinstance(key, str) or not key:
            raise SpecificationError(
                f"scenario {where} keys must be non-empty strings"
            )
        if allowed_keys is not None and key not in allowed_keys:
            raise SpecificationError(
                f"scenario {where} names unknown op {key!r}; expected one "
                "of " + ", ".join(sorted(allowed_keys))
            )
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise _fail(f"{where}.{key}", "weight must be a number")
        weight = float(raw)
        if not math.isfinite(weight) or weight < 0:
            raise _fail(
                f"{where}.{key}",
                f"weight must be finite and >= 0, got {raw}",
            )
        pairs.append((key, weight))
    if not any(weight > 0 for _key, weight in pairs):
        raise SpecificationError(
            f"scenario {where} weights must not all be zero"
        )
    return tuple(pairs)


def _parse_arrival(data: object) -> Arrival:
    if data is None:
        return Arrival()
    if not isinstance(data, dict):
        raise _fail("arrival", "must be a table")
    _check_keys(data, _ARRIVAL_KEYS, "[arrival]")
    shape = _check_str(data, "shape", "closed")
    if shape not in ARRIVAL_SHAPES:
        raise _fail(
            "arrival.shape",
            f"must be one of {', '.join(ARRIVAL_SHAPES)}, got {shape!r}",
        )
    rate = _check_number(data, "rate", 100.0, 0.0)
    if shape == "steady" and rate <= 0:
        raise _fail("arrival.rate", "must be > 0 for steady arrival")
    return Arrival(
        shape=shape,
        rate=rate,
        burst=_check_int(data, "burst", 16, 1),
        pause=_check_number(data, "pause", 0.05, 0.0),
    )


def _parse_targets(data: object) -> tuple[str, ...]:
    if data is None:
        return ()
    if not isinstance(data, list):
        raise _fail("targets", "must be a list of target spec strings")
    from repro.io import parse_target

    targets: list[str] = []
    for index, spec in enumerate(data):
        if not isinstance(spec, str) or not spec:
            raise _fail(
                f"targets[{index}]", "must be a non-empty spec string"
            )
        try:
            parse_target(spec)
        except InvalidPermutationError as exc:
            raise _fail(f"targets[{index}]", f"bad target {spec!r}: {exc}")
        targets.append(spec)
    return tuple(targets)


def _parse_params(data: object) -> tuple[tuple[str, object], ...]:
    if data is None:
        return ()
    if not isinstance(data, dict):
        raise _fail("params", "must be a table")
    _check_keys(data, _PARAM_KEYS, "[params]")
    pairs: list[tuple[str, object]] = []
    if "cost_bound" in data:
        pairs.append(
            ("cost_bound", _check_int(data, "cost_bound", 0, 0))
        )
    if "allow_not" in data:
        value = data["allow_not"]
        if not isinstance(value, bool):
            raise _fail("params.allow_not", "must be a boolean")
        pairs.append(("allow_not", value))
    return tuple(pairs)


def _parse_slo(data: object) -> SloBars:
    if data is None:
        return SloBars()
    if not isinstance(data, dict):
        raise _fail("slo", "must be a table")
    _check_keys(data, _SLO_KEYS, "[slo]")
    codes: tuple[str, ...] = ()
    if "allowed_error_codes" in data:
        raw = data["allowed_error_codes"]
        if not isinstance(raw, list) or not all(
            isinstance(code, str) and code for code in raw
        ):
            raise _fail(
                "slo.allowed_error_codes",
                "must be a list of non-empty error-code strings",
            )
        codes = tuple(raw)
    return SloBars(
        p50_ms=(
            _check_number(data, "p50_ms", 0.0, 0.0)
            if "p50_ms" in data else None
        ),
        p99_ms=(
            _check_number(data, "p99_ms", 0.0, 0.0)
            if "p99_ms" in data else None
        ),
        max_error_rate=(
            _check_number(data, "max_error_rate", 0.0, 0.0, 1.0)
            if "max_error_rate" in data else None
        ),
        max_shed_rate=(
            _check_number(data, "max_shed_rate", 0.0, 0.0, 1.0)
            if "max_shed_rate" in data else None
        ),
        allowed_error_codes=codes,
    )


def parse_scenario(data: object, source: str = "<scenario>") -> ScenarioSpec:
    """Validate decoded spec *data* (a dict) into a :class:`ScenarioSpec`.

    Raises:
        SpecificationError: any missing, unknown, ill-typed or
            out-of-range field, with the field named in the message.
    """
    if not isinstance(data, dict):
        raise SpecificationError(
            f"{source}: scenario spec must be a table/object"
        )
    _check_keys(data, _TOP_KEYS, source)
    name = _check_str(data, "name", "")
    if not name:
        raise _fail("name", "is required and must be non-empty")
    ops = _parse_weight_table(
        data.get("ops", {"synth": 1}), "[ops]", frozenset(OPERATIONS)
    )
    targets = _parse_targets(data.get("targets"))
    needs_targets = any(
        op in TARGET_OPS and weight > 0 for op, weight in ops
    )
    if needs_targets and not targets:
        raise _fail(
            "targets",
            "must name at least one target when [ops] weights "
            "synth/synth-batch",
        )
    stores: tuple[tuple[str, float], ...] = ()
    if data.get("stores") is not None:
        stores = _parse_weight_table(data["stores"], "[stores]", None)
    return ScenarioSpec(
        name=name,
        description=_check_str(data, "description", ""),
        seed=_check_int(data, "seed", 0, 0),
        requests=_check_int(data, "requests", 100, 1),
        concurrency=_check_int(data, "concurrency", 4, 1),
        arrival=_parse_arrival(data.get("arrival")),
        ops=ops,
        targets=targets,
        batch_size=_check_int(data, "batch_size", 8, 1),
        stores=stores,
        params=_parse_params(data.get("params")),
        slo=_parse_slo(data.get("slo")),
    )


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Parse one ``.toml`` / ``.json`` spec file into a ScenarioSpec.

    Raises:
        SpecificationError: unreadable file, undecodable contents, or
            any :func:`parse_scenario` validation failure.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SpecificationError(
            f"cannot read scenario spec {path}: {exc}"
        ) from None
    if path.suffix == ".toml":
        import tomllib

        try:
            data = tomllib.loads(raw.decode("utf-8", errors="replace"))
        except tomllib.TOMLDecodeError as exc:
            raise SpecificationError(
                f"{path}: not valid TOML: {exc}"
            ) from None
    elif path.suffix == ".json":
        try:
            data = json.loads(raw)
        except ValueError as exc:
            raise SpecificationError(
                f"{path}: not valid JSON: {exc}"
            ) from None
    else:
        raise SpecificationError(
            f"{path}: scenario specs must be .toml or .json"
        )
    return parse_scenario(data, source=str(path))


def find_scenario(name_or_path: str) -> ScenarioSpec:
    """Resolve a CLI scenario argument: a spec path or a bare name.

    A path that exists wins; otherwise ``scenarios/<name>.toml`` and
    ``scenarios/<name>.json`` are tried under the current directory
    (the checked-in scenario library, when run from a repo checkout).
    """
    candidate = Path(name_or_path)
    if candidate.is_file():
        return load_scenario(candidate)
    tried = [str(candidate)]
    if not candidate.suffix:
        for suffix in SPEC_SUFFIXES:
            library = Path("scenarios") / (name_or_path + suffix)
            if library.is_file():
                return load_scenario(library)
            tried.append(str(library))
    raise SpecificationError(
        "no such scenario spec; tried " + ", ".join(tried)
    )
