"""E3 -- Table 2: number of reversible circuits with cost k, k = 0..7.

Regenerates both rows of the paper's Table 2 (|G[k]| and |S8[k]|) with
the paper's cb = 7 and benchmarks the full FMCF closure (the paper's
machine needed minutes; the bytes-translate BFS needs seconds).

Documented deviations (see EXPERIMENTS.md): |G[2]| = 24 vs the paper's
30 (six commuting CNOT pairs coincide as permutations) and |G[3]| = 51
vs 52 (the published pseudocode never subtracts G[0], re-counting the
identity at cost 3; ``paper_pseudocode=True`` reproduces 52).
"""

from repro.core.fmcf import find_minimum_cost_circuits
from repro.render.tables import cost_table_text

PAPER_G = [1, 6, 30, 52, 84, 156, 398, 540]
PAPER_S8 = [8, 48, 240, 416, 672, 1248, 3184, 4320]
OURS_G = [1, 6, 24, 51, 84, 156, 398, 540]


def test_table2_full_cost_spectrum(benchmark, library3):
    table = benchmark.pedantic(
        lambda: find_minimum_cost_circuits(library3, cost_bound=7),
        rounds=3,
        iterations=1,
    )
    assert table.g_sizes == OURS_G
    assert table.s8_sizes == [8 * g for g in OURS_G]
    for k in (0, 1, 4, 5, 6, 7):
        assert table.g_sizes[k] == PAPER_G[k]
        assert table.s8_sizes[k] == PAPER_S8[k]
    print("\n" + cost_table_text(table, paper_g=PAPER_G))


def test_table2_paper_pseudocode_variant(benchmark, library3):
    """The verbatim published pseudocode: reproduces |G[3]| = 52."""
    table = benchmark.pedantic(
        lambda: find_minimum_cost_circuits(
            library3, cost_bound=4, paper_pseudocode=True
        ),
        rounds=3,
        iterations=1,
    )
    assert table.g_sizes == [1, 6, 24, 52, 84]


def test_table2_theorem2_factor(benchmark, library3):
    """|S8[k]| = 8 |G[k]|: verify the coset products are distinct."""
    from repro.core.theorems import coset_cost_is_invariant

    table = find_minimum_cost_circuits(library3, cost_bound=5)
    result = benchmark(lambda: coset_cost_is_invariant(table, sample_stride=1))
    assert result
