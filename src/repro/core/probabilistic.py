"""Probabilistic-circuit synthesis (Section 4 of the paper).

Dropping the constraint that outputs are pure states turns the same
search into a synthesizer for *binary-input, quaternary-output* circuits:
after measurement, a V0/V1 output wire is a fair random bit, so these
circuits realize probabilistic combinational functions -- the building
block of the paper's quantum automata, controlled random-number
generators and hidden Markov models.

A :class:`ProbabilisticSpec` assigns one quaternary output pattern to
every binary input pattern; :func:`express_probabilistic` finds a
minimum-cost reasonable cascade realizing the assignment exactly.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import CostBoundExceededError, SpecificationError
from repro.core.circuit import Circuit
from repro.core.cost import CostModel, UNIT_COST
from repro.core.mce import DEFAULT_COST_BOUND
from repro.core.search import CascadeSearch
from repro.gates.library import GateLibrary
from repro.mvl.patterns import (
    Pattern,
    binary_patterns,
    pattern_from_string,
    pattern_measurement_distribution,
)
from repro.mvl.values import Qv
from repro.perm.permutation import Permutation

#: Per-bit distribution alphabet for the convenience constructor:
#: deterministic 0/1, or a fair coin ('?').
_FAIR = "?"


@dataclass(frozen=True)
class ProbabilisticSpec:
    """Binary-input -> quaternary-output specification.

    Attributes:
        outputs: one output :class:`Pattern` per binary input, in input
            order (index = integer value of the input bits, wire 0 most
            significant).
    """

    outputs: tuple[Pattern, ...]

    def __post_init__(self) -> None:
        n = len(self.outputs)
        if n == 0 or n & (n - 1):
            raise SpecificationError("need one output per binary input (2**n)")
        width = self.outputs[0].n_qubits
        if any(p.n_qubits != width for p in self.outputs):
            raise SpecificationError("output patterns have mixed widths")
        if 2**width != n:
            raise SpecificationError(
                f"{n} outputs but patterns have {width} wires"
            )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_strings(cls, outputs: Sequence[str]) -> "ProbabilisticSpec":
        """Parse patterns like ``"1,V0,0"`` (one per binary input)."""
        return cls(tuple(pattern_from_string(s) for s in outputs))

    @classmethod
    def from_bit_distributions(
        cls, rows: Sequence[Sequence[str | int]]
    ) -> "ProbabilisticSpec":
        """Build from per-bit symbols: 0, 1, or '?' for a fair coin.

        A '?' wire is encoded as ``V0`` (``V1`` has the same measurement
        statistics; the synthesizer may realize either).
        """
        patterns = []
        for row in rows:
            values = []
            for symbol in row:
                if symbol in (0, 1, "0", "1"):
                    values.append(Qv(int(symbol)))
                elif symbol == _FAIR:
                    values.append(Qv.V0)
                else:
                    raise SpecificationError(
                        f"bit symbol {symbol!r} is not 0, 1 or '?'"
                    )
            patterns.append(Pattern(values))
        return cls(tuple(patterns))

    @classmethod
    def deterministic(cls, permutation: Permutation, n_qubits: int) -> "ProbabilisticSpec":
        """Wrap a reversible target as a (degenerate) probabilistic spec."""
        inputs = list(binary_patterns(n_qubits))
        return cls(tuple(inputs[permutation(i)] for i in range(len(inputs))))

    # -- queries -----------------------------------------------------------------

    @property
    def n_qubits(self) -> int:
        return self.outputs[0].n_qubits

    def output_for(self, input_bits: Sequence[int]) -> Pattern:
        index = 0
        for b in input_bits:
            index = index * 2 + (b & 1)
        return self.outputs[index]

    def is_deterministic(self) -> bool:
        """True when every output is a pure binary pattern."""
        return all(p.is_binary for p in self.outputs)

    def measurement_distribution(
        self, input_index: int
    ) -> dict[tuple[int, ...], Fraction]:
        """Exact joint outcome distribution after measuring all wires.

        Wires are independent (the register stays a product state under
        the paper's binary-control discipline), so the joint law is the
        product of per-wire Born distributions.
        """
        return pattern_measurement_distribution(self.outputs[input_index])

    def validate_feasible(self, library: GateLibrary) -> tuple[int, ...]:
        """Check realizability conditions; return target label images.

        Necessary conditions enforced:

        * every output pattern lies in the reduced label space (a pattern
          with no pure 1 -- other than all-zeros -- is unreachable, since
          no reasonable cascade can destroy the last 1);
        * outputs are pairwise distinct (the underlying label map of any
          cascade is a bijection);
        * the all-zero input maps to the all-zero output (nothing can
          fire on the all-zero pattern).
        """
        space = library.space
        if self.n_qubits != library.n_qubits:
            raise SpecificationError("spec width does not match library")
        images = []
        for index, pattern in enumerate(self.outputs):
            if pattern not in space:
                raise SpecificationError(
                    f"output {pattern} for input {index} is outside the "
                    "reachable label space (it has no pure 1)"
                )
            images.append(space.label(pattern))
        if len(set(images)) != len(images):
            raise SpecificationError(
                "outputs are not pairwise distinct; cascades are reversible "
                "at the label level, randomness arises only at measurement"
            )
        if images[0] != 0:
            raise SpecificationError(
                "the all-zero input is fixed by every gate; its output "
                "must be the all-zero pattern"
            )
        return tuple(images)


@dataclass(frozen=True)
class ProbabilisticSynthesisResult:
    """A synthesized probabilistic circuit.

    Attributes:
        spec: the specification realized.
        circuit: the cascade (2-qubit gates only; NOT layers are not used
            here because they would leave the reduced label space).
        cost: quantum cost.
        cascade_permutation: full label permutation of the cascade.
    """

    spec: ProbabilisticSpec
    circuit: Circuit
    cost: int
    cascade_permutation: Permutation

    def __str__(self) -> str:
        return f"{self.circuit} (cost {self.cost})"


def express_probabilistic(
    spec: ProbabilisticSpec,
    library: GateLibrary,
    cost_bound: int = DEFAULT_COST_BOUND,
    cost_model: CostModel = UNIT_COST,
    search: CascadeSearch | None = None,
    all_implementations: bool = False,
) -> ProbabilisticSynthesisResult | list[ProbabilisticSynthesisResult]:
    """Synthesize a minimum-cost circuit for a probabilistic spec.

    Searches the same reasonable-cascade levels as MCE but matches the
    prescribed (possibly non-binary) images of the binary labels instead
    of requiring b(S) = S.

    Raises:
        SpecificationError: if the spec is structurally unrealizable.
        CostBoundExceededError: no realization within *cost_bound*.
    """
    images = spec.validate_feasible(library)
    wanted = bytes(images)
    n_binary = library.space.n_binary

    if search is None:
        search = CascadeSearch(library, cost_model, track_parents=True)
    elif not search.tracks_parents:
        raise SpecificationError(
            "express_probabilistic() needs a parent-tracking search"
        )

    start_cost = 0 if spec.outputs[0:] and wanted == bytes(range(n_binary)) else 1
    for cost in range(start_cost, cost_bound + 1):
        if cost == 0:
            matches = [bytes(range(library.space.size))]
        else:
            matches = [
                perm
                for perm, _mask in search.level(cost)
                if perm[:n_binary] == wanted
            ]
        if matches:
            results = []
            for perm in matches:
                circuit = (
                    Circuit.empty(library.n_qubits)
                    if cost == 0
                    else search.witness_circuit(perm)
                )
                results.append(
                    ProbabilisticSynthesisResult(
                        spec=spec,
                        circuit=circuit,
                        cost=circuit.cost(cost_model),
                        cascade_permutation=Permutation.from_images(perm),
                    )
                )
                if not all_implementations:
                    return results[0]
            return results
    raise CostBoundExceededError("probabilistic specification", cost_bound)
