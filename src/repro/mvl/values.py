"""The quaternary value algebra {0, 1, V0, V1}.

``V`` is the square root of NOT:

    V = [[0.5+0.5i, 0.5-0.5i],
         [0.5-0.5i, 0.5+0.5i]]

Acting on computational basis states it produces two new single-qubit
states ``V0 = V|0>`` and ``V1 = V|1>``.  The paper (Section 2) derives the
closed value system used throughout:

    V 0  = V0     V+ 0 = V1      (so  V0 = V+ 1,  V1 = V+ 0)
    V 1  = V1     V+ 1 = V0
    V V0 = 1      V+ V0 = 0
    V V1 = 0      V+ V1 = 1

Values are encoded as the :class:`Qv` enum with the *numeric ordering the
paper uses to sort truth-table rows*: ``0 < 1 < V0 < V1``.
"""

from __future__ import annotations

import enum
from fractions import Fraction

from repro.errors import InvalidValueError


class Qv(enum.IntEnum):
    """A quaternary wire value.

    The integer codes (0, 1, 2, 3) double as the sort key for the paper's
    "from small to big" truth-table row ordering.
    """

    ZERO = 0
    ONE = 1
    V0 = 2
    V1 = 3

    def __str__(self) -> str:
        return _NAMES[self]

    @property
    def is_binary(self) -> bool:
        """True for the pure states ``0`` and ``1``."""
        return self <= Qv.ONE

    @property
    def bit(self) -> int:
        """The classical bit for a binary value.

        Raises:
            InvalidValueError: if the value is ``V0`` or ``V1``.
        """
        if not self.is_binary:
            raise InvalidValueError(f"{self} is not a binary value")
        return int(self)

    @classmethod
    def from_string(cls, text: str) -> "Qv":
        """Parse ``'0' | '1' | 'V0' | 'V1'`` (case-insensitive, also 'v0+'-style
        aliases ``V+0``/``V+1`` which denote the same states)."""
        key = text.strip().upper()
        try:
            return _PARSE[key]
        except KeyError:
            raise InvalidValueError(f"cannot parse quaternary value {text!r}") from None


ZERO = Qv.ZERO
ONE = Qv.ONE
V0 = Qv.V0
V1 = Qv.V1

_NAMES = {Qv.ZERO: "0", Qv.ONE: "1", Qv.V0: "V0", Qv.V1: "V1"}

# V+0 denotes V+|0> which equals V1; V+1 equals V0 (paper, Section 2).
_PARSE = {
    "0": Qv.ZERO,
    "1": Qv.ONE,
    "V0": Qv.V0,
    "V1": Qv.V1,
    "V+0": Qv.V1,
    "V+1": Qv.V0,
}

# Action tables for the three 1-qubit operations the library ever applies
# to a data wire.  V cycles 0 -> V0 -> 1 -> V1 -> 0; V+ is its inverse.
_V_ACTION = {Qv.ZERO: Qv.V0, Qv.V0: Qv.ONE, Qv.ONE: Qv.V1, Qv.V1: Qv.ZERO}
_VDAG_ACTION = {v: k for k, v in _V_ACTION.items()}
_NOT_ACTION = {Qv.ZERO: Qv.ONE, Qv.ONE: Qv.ZERO, Qv.V0: Qv.V1, Qv.V1: Qv.V0}


def apply_v(value: Qv) -> Qv:
    """Apply the square-root-of-NOT operator ``V`` to a wire value.

    The four-cycle ``0 -> V0 -> 1 -> V1 -> 0`` encodes all four identities
    from the paper: ``V(0)=V0``, ``V(V0)=1``, ``V(1)=V1``, ``V(V1)=0``.
    """
    return _V_ACTION[Qv(value)]


def apply_vdag(value: Qv) -> Qv:
    """Apply ``V+`` (Hermitian adjoint of V), the inverse cycle of ``V``."""
    return _VDAG_ACTION[Qv(value)]


def apply_not(value: Qv) -> Qv:
    """Apply NOT.

    On binary values this is the classical inverter.  On mixed values,
    ``X V|0> = V|1>`` and ``X V|1> = V|0>`` (X commutes with V up to the
    value swap), so NOT exchanges ``V0`` and ``V1``.
    """
    return _NOT_ACTION[Qv(value)]


def is_binary(value: Qv) -> bool:
    """True when *value* is a pure computational-basis state (0 or 1)."""
    return Qv(value).is_binary


def measurement_probabilities(value: Qv) -> dict[int, Fraction]:
    """Exact Born-rule outcome distribution of measuring one wire.

    ``V0`` and ``V1`` have amplitudes of squared magnitude 1/2 on both
    basis states, so they measure to a fair coin; binary values are
    deterministic.  Returns a dict ``{0: p0, 1: p1}`` of exact fractions.
    """
    value = Qv(value)
    if value is Qv.ZERO:
        return {0: Fraction(1), 1: Fraction(0)}
    if value is Qv.ONE:
        return {0: Fraction(0), 1: Fraction(1)}
    return {0: Fraction(1, 2), 1: Fraction(1, 2)}
