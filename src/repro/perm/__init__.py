"""Permutation-group substrate (the library's GAP replacement).

The paper leans on GAP for three things: representing gates as
permutations, composing/deduplicating cascades, and group-order /
membership queries (|G| = 5040, |S8| = 40320, Theorem 2's cosets).  This
package provides all of it:

* :class:`~repro.perm.permutation.Permutation` -- immutable, bytes-backed
  permutations whose product is a single C-speed ``bytes.translate`` call;
  cycle-notation I/O uses the paper's 1-based convention.
* :mod:`repro.perm.schreier_sims` -- a base and strong generating set
  (BSGS) construction giving group order and membership tests.
* :class:`~repro.perm.group.PermutationGroup` -- the user-facing group
  API (order, membership, iteration, cosets, stabilizers).
"""

from repro.perm.permutation import Permutation
from repro.perm.group import PermutationGroup
from repro.perm.named_groups import (
    symmetric_group,
    symmetric_group_order,
    coset_decomposition,
    closure_levels,
)

__all__ = [
    "Permutation",
    "PermutationGroup",
    "symmetric_group",
    "symmetric_group_order",
    "coset_decomposition",
    "closure_levels",
]
