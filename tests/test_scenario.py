"""Scenario engine tests: specs, seeded streams, runs, replay, chaos.

Pins the subsystem's three contracts:

* **Stream determinism** -- one seed, one stream: op sequence, targets
  and store selectors are identical across runs (and across the CLI's
  ``repro load --dry-run``), with a golden prefix pinned so drift in
  the RNG consumption order is caught, not just nondeterminism.
* **Replay fidelity** -- an access log recorded from a golden run
  replays with zero outcome mismatches and zero result-byte diffs
  against the same store, including across a rotated log set.
* **Chaos invisibility** -- a scenario driven at a fleet whose
  preferred replica crashes mid-run finishes with zero client-visible
  errors.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.search import CascadeSearch
from repro.core.store import save_search
from repro.errors import SpecificationError
from repro.fleet.manager import BackgroundFleet
from repro.fleet.router import HashRing
from repro.fleet.supervisor import GuardRails
from repro.gates.library import GateLibrary
from repro.io import rotated_access_logs
from repro import scenario
from repro.server import BackgroundServer

BOUND = 4
SCENARIO_DIR = Path(__file__).resolve().parents[1] / "scenarios"
CHECKED_IN = (
    "steady_interactive", "bursty_batch", "hotkey_skew",
    "mixed_multistore", "pathological_cost_bounds",
)


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("scenario") / "closure.rpro"
    search = CascadeSearch(GateLibrary(3), track_parents=True)
    search.extend_to(BOUND)
    save_search(search, path)
    return str(path)


@pytest.fixture(scope="module")
def steady():
    return scenario.load_scenario(SCENARIO_DIR / "steady_interactive.toml")


class TestCheckedInSpecs:
    @pytest.mark.parametrize("name", CHECKED_IN)
    def test_parses_and_name_matches_filename(self, name):
        spec = scenario.load_scenario(SCENARIO_DIR / f"{name}.toml")
        assert spec.name == name
        assert spec.requests >= 1
        # Every spec carries SLO bars (the point of the library).
        assert spec.slo.max_error_rate is not None \
            or spec.slo.p99_ms is not None

    def test_at_least_three_shapes_for_bench(self):
        assert len(CHECKED_IN) >= 3

    def test_json_specs_load_too(self, tmp_path):
        path = tmp_path / "mini.json"
        path.write_text(json.dumps({
            "name": "mini", "requests": 3, "targets": ["peres"],
        }))
        spec = scenario.load_scenario(path)
        assert spec.name == "mini" and spec.ops == (("synth", 1.0),)


class TestSpecValidation:
    def _base(self, **overrides):
        data = {"name": "x", "targets": ["peres"]}
        data.update(overrides)
        return data

    def test_unknown_top_level_field(self):
        with pytest.raises(SpecificationError, match="unknown scenario"):
            scenario.parse_scenario(self._base(rps=10))

    def test_unknown_op(self):
        with pytest.raises(SpecificationError, match="unknown op"):
            scenario.parse_scenario(self._base(ops={"synthh": 1}))

    def test_negative_weight(self):
        with pytest.raises(SpecificationError, match=">= 0"):
            scenario.parse_scenario(self._base(ops={"synth": -1}))

    def test_all_zero_weights(self):
        with pytest.raises(SpecificationError, match="all be zero"):
            scenario.parse_scenario(self._base(ops={"synth": 0}))

    def test_bad_arrival_shape(self):
        with pytest.raises(SpecificationError, match="arrival.shape"):
            scenario.parse_scenario(
                self._base(arrival={"shape": "poisson"})
            )

    def test_steady_needs_positive_rate(self):
        with pytest.raises(SpecificationError, match="rate"):
            scenario.parse_scenario(
                self._base(arrival={"shape": "steady", "rate": 0})
            )

    def test_bad_target_named(self):
        with pytest.raises(SpecificationError, match="bad target"):
            scenario.parse_scenario(self._base(targets=["not-a-perm"]))

    def test_synth_without_targets(self):
        with pytest.raises(SpecificationError, match="targets"):
            scenario.parse_scenario({"name": "x", "ops": {"synth": 1}})

    def test_healthz_only_needs_no_targets(self):
        spec = scenario.parse_scenario(
            {"name": "x", "ops": {"healthz": 1}}
        )
        assert spec.targets == ()

    def test_slo_rate_above_one(self):
        with pytest.raises(SpecificationError, match="<= 1"):
            scenario.parse_scenario(
                self._base(slo={"max_error_rate": 1.5})
            )

    def test_non_table_spec(self):
        with pytest.raises(SpecificationError, match="must be a table"):
            scenario.parse_scenario([1, 2, 3])

    def test_bool_is_not_a_count(self):
        with pytest.raises(SpecificationError, match="integer"):
            scenario.parse_scenario(self._base(requests=True))

    def test_find_scenario_unknown_name(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SpecificationError, match="no such scenario"):
            scenario.find_scenario("nonexistent")

    def test_find_scenario_by_library_name(self, monkeypatch):
        monkeypatch.chdir(SCENARIO_DIR.parent)
        spec = scenario.find_scenario("steady_interactive")
        assert spec.name == "steady_interactive"

    def test_bad_suffix_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: x\n")
        with pytest.raises(SpecificationError, match=".toml or .json"):
            scenario.load_scenario(path)


class TestStreamDeterminism:
    def test_same_seed_same_stream(self, steady):
        assert scenario.generate(steady, seed=7) \
            == scenario.generate(steady, seed=7)

    def test_different_seed_different_stream(self, steady):
        first = scenario.generate(steady, seed=7)
        second = scenario.generate(steady, seed=8)
        assert [r.params for r in first] != [r.params for r in second]

    def test_golden_prefix_pinned(self, steady):
        """The exact head of the steady stream at seed 7: catches any
        change to RNG consumption order, not just nondeterminism."""
        plan = scenario.generate(steady, seed=7, requests=4)
        assert [(r.op, r.params.get("target")) for r in plan] == [
            ("synth", "g2"), ("synth", "peres"),
            ("synth", "cnot_ba"), ("synth", "cnot_cb"),
        ]
        assert [r.at_s for r in plan] == [0.0, 0.0025, 0.005, 0.0075]

    def test_bursty_offsets(self):
        spec = scenario.load_scenario(SCENARIO_DIR / "bursty_batch.toml")
        plan = scenario.generate(spec, requests=26)
        offsets = sorted({r.at_s for r in plan})
        assert offsets == [0.0, 0.1, 0.2]
        assert all(
            r.at_s == (r.index // spec.arrival.burst) * spec.arrival.pause
            for r in plan
        )

    def test_hotkey_skew_weights_stores(self):
        spec = scenario.load_scenario(SCENARIO_DIR / "hotkey_skew.toml")
        plan = scenario.generate(spec)
        stores = [r.store for r in plan]
        assert set(stores) == {"deep", "shallow"}
        assert stores.count("deep") > 2 * stores.count("shallow")

    def test_batch_requests_carry_batch_size_targets(self):
        spec = scenario.load_scenario(SCENARIO_DIR / "bursty_batch.toml")
        plan = scenario.generate(spec, requests=20)
        batches = [r for r in plan if r.op == "synth-batch"]
        assert batches
        assert all(
            len(r.params["targets"]) == spec.batch_size for r in batches
        )

    def test_cli_dry_run_is_deterministic(self, capsys, monkeypatch):
        monkeypatch.chdir(SCENARIO_DIR.parent)
        argv = ["load", "steady_interactive", "--dry-run",
                "--seed", "7", "--requests", "12"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        lines = [json.loads(line) for line in first.splitlines()]
        assert len(lines) == 12
        assert lines[0] == {
            "index": 0, "at_s": 0.0, "op": "synth", "store": None,
            "params": {"target": "g2"},
        }


class TestScenarioRuns:
    def test_steady_run_counts_latencies_and_slo(self, store_path, steady):
        with BackgroundServer(store_path) as server:
            plan, samples, wall_s = scenario.run_scenario(
                steady, server.address_text, seed=3, requests=30,
                concurrency=2,
            )
        assert len(plan) == len(samples) == 30
        report = scenario.scenario_report(steady, samples, wall_s, seed=3)
        assert report["requests"] == 30 and report["ok"] == 30
        assert report["errors"] == {} and report["shed"] == 0
        assert report["latency_ms"]["p50"] > 0
        assert report["throughput_rps"] > 0
        assert report["slo_pass"], report["slo_violations"]

    def test_pathological_errors_are_the_allowed_class(self, store_path):
        spec = scenario.load_scenario(
            SCENARIO_DIR / "pathological_cost_bounds.toml"
        )
        with BackgroundServer(store_path) as server:
            _plan, samples, wall_s = scenario.run_scenario(
                spec, server.address_text, requests=25, concurrency=2,
            )
        stats = scenario.summarize(samples, wall_s)
        # The over-tight bound *did* produce structured errors ...
        assert stats["errors"].get("cost-bound-exceeded", 0) > 0
        assert scenario.report.error_rate(stats) > 0
        # ... and the SLO allows exactly that class, nothing else.
        assert scenario.check_slo(spec.slo, stats) == []
        assert set(stats["errors"]) == {"cost-bound-exceeded"}

    def test_multistore_skew_routes_by_alias(self, store_path):
        spec = scenario.load_scenario(SCENARIO_DIR / "hotkey_skew.toml")
        stores = [f"deep={store_path}", f"shallow={store_path}"]
        with BackgroundServer(stores) as server:
            _plan, samples, _wall = scenario.run_scenario(
                spec, server.address_text, requests=40, concurrency=2,
            )
        assert all(sample.outcome == "ok" for sample in samples)
        hit = [sample.store for sample in samples]
        assert hit.count("deep") > hit.count("shallow") > 0

    def test_slo_violation_fails_cli_exit_code(self, store_path, tmp_path):
        """An impossible p50 bar must turn into exit code 1 (and not
        with --no-slo)."""
        spec_path = tmp_path / "impossible.toml"
        spec_path.write_text(
            'name = "impossible"\nrequests = 5\ntargets = ["peres"]\n'
            "[slo]\np50_ms = 0.0001\n"
        )
        with BackgroundServer(store_path) as server:
            argv = ["load", str(spec_path), "--server",
                    server.address_text]
            assert main(argv) == 1
            assert main(argv + ["--no-slo"]) == 0


class TestReplay:
    def _record_run(self, store_path, tmp_path, **server_kwargs):
        """Drive a golden batch through a logging server; return log."""
        log = str(tmp_path / "access.ndjson")
        steady = scenario.load_scenario(
            SCENARIO_DIR / "steady_interactive.toml"
        )
        with BackgroundServer(
            store_path, access_log=log, **server_kwargs
        ) as server:
            scenario.run_scenario(
                steady, server.address_text, seed=11, requests=40,
                concurrency=1,
            )
        return log

    def test_golden_replay_zero_diffs_across_rotated_set(
        self, store_path, tmp_path
    ):
        log = self._record_run(
            store_path, tmp_path,
            access_log_max_bytes=4096, access_log_keep=8,
        )
        # Rotation actually happened: the trace spans several files.
        assert len(rotated_access_logs(log)) > 1
        records, tail = scenario.load_trace(log)
        assert tail is None and len(records) == 40
        _by_alias, golden = scenario.parse_golden_specs([store_path])
        with BackgroundServer(store_path) as server:
            report = scenario.replay(
                records, server.address_text, default_golden=golden,
            )
        assert report["replayed"] == 40
        assert report["outcome_mismatches"] == 0
        assert report["result_byte_diffs"] == 0
        assert report["byte_checked"] > 30  # every non-healthz op
        assert report["clean"]

    def test_cli_replay_roundtrip_and_op_sequence(
        self, store_path, tmp_path, capsys
    ):
        """CLI end to end, plus the op-sequence pin: a concurrency-1
        run's access log replays the planned stream in order."""
        log = self._record_run(store_path, tmp_path)
        steady = scenario.load_scenario(
            SCENARIO_DIR / "steady_interactive.toml"
        )
        plan = scenario.generate(steady, seed=11, requests=40)
        records, _tail = scenario.load_trace(log)
        assert [r["op"] for r in records] == [p.op for p in plan]
        out = str(tmp_path / "replay.json")
        with BackgroundServer(store_path) as server:
            rc = main([
                "replay", log, "--server", server.address_text,
                "--golden", store_path, "--json", out,
            ])
        capsys.readouterr()
        assert rc == 0
        report = json.loads(Path(out).read_text())
        assert report["clean"] and report["result_byte_diffs"] == 0

    def test_outcome_drift_is_reported_and_fails(
        self, store_path, tmp_path, capsys
    ):
        """A log claiming an error for a target the store serves fine
        must surface as an outcome mismatch and exit code 1."""
        log = tmp_path / "forged.ndjson"
        log.write_text(json.dumps({
            "op": "synth", "store": None, "queue_wait_ms": 0,
            "execute_ms": 1, "total_ms": 1,
            "outcome": "cost-bound-exceeded",
            "params": {"target": "peres"},
        }) + "\n")
        with BackgroundServer(store_path) as server:
            rc = main([
                "replay", str(log), "--server", server.address_text,
                "--no-rotated",
            ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "1 outcome mismatches" in out

    def test_params_less_records_are_skipped_not_fatal(
        self, store_path, tmp_path
    ):
        """Logs from before params-bearing records still replay: query
        records without params are counted, not crashed on."""
        log = tmp_path / "old-format.ndjson"
        base = {"queue_wait_ms": 0, "execute_ms": 1, "total_ms": 1,
                "outcome": "ok"}
        log.write_text(
            json.dumps({"op": "synth", "store": None, **base}) + "\n"
            + json.dumps({"op": "healthz", "store": None, **base}) + "\n"
        )
        with BackgroundServer(store_path) as server:
            report = scenario.replay(
                scenario.load_trace(log, rotated=False)[0],
                server.address_text,
            )
        assert report["skipped_no_params"] == 1
        assert report["replayed"] == 1  # the healthz needs no params
        assert report["clean"]

    def test_truncated_rotated_tail_does_not_kill_replay(
        self, store_path, tmp_path
    ):
        """The satellite fix end to end: a crash-truncated non-final
        rotated file still replays, with the tail surfaced."""
        record = {"op": "healthz", "store": None, "queue_wait_ms": 0,
                  "execute_ms": 1, "total_ms": 1, "outcome": "ok"}
        line = json.dumps(record) + "\n"
        log = tmp_path / "access.ndjson"
        (tmp_path / "access.ndjson.1").write_text(line + line[:20])
        log.write_text(line)
        records, tail = scenario.load_trace(log)
        assert len(records) == 2
        assert tail["path"].endswith(".1")
        with BackgroundServer(store_path) as server:
            report = scenario.replay(records, server.address_text)
        assert report["replayed"] == 2 and report["clean"]


class TestScenarioAgainstFleet:
    def test_chaos_crash_mid_scenario_zero_client_errors(
        self, store_path, steady
    ):
        """The acceptance bar: kill the preferred replica mid-scenario;
        the run completes with zero client-visible errors and the
        router's shed/failover machinery stays inside the fleet."""
        ring = HashRing()
        ring.add("backend-0")
        ring.add("backend-1")
        crash_index = int(ring.order("")[0].rsplit("-", 1)[1])
        with BackgroundFleet(
            store_path,
            replicas=2,
            port=0,
            faults={crash_index: "exit-after:8"},
            interval=0.2,
            guardrails=GuardRails(min_healthy=1, cooldown_s=0.3),
        ) as fleet:
            _plan, samples, wall_s = scenario.run_scenario(
                steady, fleet.address_text, seed=5, requests=64,
                concurrency=4, retries=2,
            )
            health = scenario.snapshot(fleet.address_text)
        assert len(samples) == 64
        bad = [s for s in samples if s.outcome != "ok"]
        assert bad == [], f"client-visible errors: {bad}"
        report = scenario.scenario_report(
            steady, samples, wall_s, seed=5, server_health=health,
        )
        assert report["server"]["role"] == "router"
        assert report["errors"] == {} and report["shed"] == 0

    def test_snapshot_carries_fleet_state(self, store_path):
        with BackgroundFleet(
            store_path, replicas=2, port=0, interval=5.0
        ) as fleet:
            payload = scenario.snapshot(fleet.address_text)
        assert payload["role"] == "router"
        assert set(payload["backends"]) == {"backend-0", "backend-1"}
        for info in payload["backends"].values():
            assert {"breaker", "inflight", "max_inflight"} <= set(info)
