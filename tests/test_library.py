"""Unit tests for the gate library (repro.gates.library)."""

import pytest

from repro.errors import InvalidGateError
from repro.gates.gate import Gate
from repro.gates.kinds import GateKind
from repro.gates.library import GateLibrary
from repro.mvl.labels import label_space


class TestComposition:
    def test_three_qubits_has_18_gates(self, library3):
        assert len(library3) == 18

    def test_two_qubits_has_6_gates(self, library2):
        assert len(library2) == 6

    def test_four_qubits_has_36_gates(self):
        assert len(GateLibrary(4)) == 36

    def test_kind_breakdown(self, library3):
        kinds = [e.gate.kind for e in library3]
        assert kinds.count(GateKind.V) == 6
        assert kinds.count(GateKind.VDAG) == 6
        assert kinds.count(GateKind.CNOT) == 6

    def test_indices_are_positions(self, library3):
        for position, entry in enumerate(library3.gates):
            assert entry.index == position
            assert library3[position] is entry

    def test_custom_kind_subset(self):
        feynman_only = GateLibrary(3, kinds=(GateKind.CNOT,))
        assert len(feynman_only) == 6

    def test_not_kind_rejected(self):
        with pytest.raises(InvalidGateError):
            GateLibrary(3, kinds=(GateKind.NOT,))

    def test_space_width_mismatch_rejected(self):
        with pytest.raises(InvalidGateError):
            GateLibrary(3, space=label_space(2))


class TestLookup:
    def test_by_name(self, library3):
        entry = library3.by_name("V_BA")
        assert entry.gate == Gate.v(1, 0, 3)

    def test_by_name_unknown(self, library3):
        with pytest.raises(InvalidGateError):
            library3.by_name("V_ZZ")

    def test_entry_for(self, library3):
        gate = Gate.cnot(2, 0, 3)
        assert library3.entry_for(gate).gate == gate

    def test_adjoint_entry(self, library3):
        v = library3.by_name("V_BA")
        assert library3.adjoint_entry(v).name == "V+_BA"
        f = library3.by_name("F_CA")
        assert library3.adjoint_entry(f).name == "F_CA"

    def test_iteration(self, library3):
        assert [e.name for e in library3][:3]


class TestPaperSubLibraries:
    def test_sublibrary_names_match_section3(self, library3):
        subs = library3.sublibrary_names()
        assert set(subs["L_A"]) == {"V_BA", "V_CA", "V+_BA", "V+_CA"}
        assert set(subs["L_B"]) == {"V_AB", "V_CB", "V+_AB", "V+_CB"}
        assert set(subs["L_C"]) == {"V_AC", "V_BC", "V+_AC", "V+_BC"}
        assert set(subs["L_AB"]) == {"F_AB", "F_BA"}
        assert set(subs["L_AC"]) == {"F_AC", "F_CA"}
        assert set(subs["L_BC"]) == {"F_BC", "F_CB"}

    def test_sublibraries_partition_the_library(self, library3):
        names = []
        for gates in library3.sublibrary_names().values():
            names.extend(gates)
        assert sorted(names) == sorted(e.name for e in library3)

    def test_controlled_sublibrary(self, library3):
        entries = library3.controlled_sublibrary(0)
        assert {e.name for e in entries} == {"V_BA", "V_CA", "V+_BA", "V+_CA"}

    def test_feynman_sublibrary(self, library3):
        entries = library3.feynman_sublibrary(1, 2)
        assert {e.name for e in entries} == {"F_BC", "F_CB"}


class TestBannedMasks:
    def test_banned_sets_paper_keys(self, library3):
        banned = library3.banned_sets_paper()
        assert set(banned) == {"N_A", "N_B", "N_C", "N_AB", "N_AC", "N_BC"}

    def test_banned_mask_per_gate_matches_sublibrary(self, library3, space3):
        for entry in library3:
            expected = space3.banned_mask(entry.gate.constrained_wires)
            assert entry.banned_mask == expected

    def test_controlled_gates_share_control_mask(self, library3, space3):
        for control in range(3):
            masks = {
                e.banned_mask for e in library3.controlled_sublibrary(control)
            }
            assert masks == {space3.banned_mask([control])}


class TestSearchView:
    def test_search_rows_align_with_entries(self, library3):
        rows = library3.search_rows()
        assert len(rows) == 18
        for entry, (table, banned, cost) in zip(library3.gates, rows):
            assert table == entry.table
            assert banned == entry.banned_mask
            assert cost == 1

    def test_table_is_256_bytes(self, library3):
        for entry in library3:
            assert len(entry.table) == 256

    def test_translate_table_matches_permutation(self, library3):
        entry = library3.by_name("V_BA")
        identity = bytes(range(38))
        assert identity.translate(entry.table) == entry.permutation.images

    def test_circuit_permutation(self, library3):
        a = library3.by_name("V_CB")
        b = library3.by_name("F_BA")
        perm = library3.circuit_permutation([a, b])
        assert perm == a.permutation * b.permutation

    def test_circuit_permutation_empty(self, library3):
        assert library3.circuit_permutation([]).is_identity

    def test_repr(self, library3):
        assert "n_gates=18" in repr(library3)

    def test_library_gate_str(self, library3):
        assert str(library3.by_name("V+_CB")) == "V+_CB"
