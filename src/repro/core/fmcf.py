"""FMCF -- the paper's Finding_Minimum_Cost_Circuits algorithm.

Computes ``G[k]``: the set of all binary-input/binary-output reversible
circuits whose *minimal* quantum cost (without NOT gates) is exactly k.
Implementation follows the paper's pseudocode:

    A[k] = cascades of cost <= k           (the search's seen-set)
    B[k] = A[k] - A[k-1]                   (the search's level k)
    pre_G[k] = {RestrictedPerm(b, S) : b in B[k], b(S) = S}
    G[k] = pre_G[k] - G[k-1] - ... - G[1]

plus Theorem 2's corollary |S8[k]| = 2**n * |G[k]| for the table row that
includes free NOT layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost import CostModel, UNIT_COST
from repro.core.search import CascadeSearch, SearchStats
from repro.gates.library import GateLibrary
from repro.perm.permutation import Permutation


@dataclass
class CostTable:
    """The result of FMCF up to a cost bound.

    Attributes:
        cost_bound: the paper's ``cb``.
        classes: ``classes[k]`` is G[k] as a list of degree-2**n
            permutations of the binary patterns (``classes[0]`` is the
            identity singleton).
        b_sizes: |B[k]| per level (cascade permutations of cost k).
        a_sizes: |A[k]| cumulative.
        n_qubits: register width.
    """

    cost_bound: int
    n_qubits: int
    classes: list[list[Permutation]]
    b_sizes: list[int]
    a_sizes: list[int]
    stats: SearchStats | None = None
    _cost_index: dict[Permutation, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._cost_index:
            for k, members in enumerate(self.classes):
                for perm in members:
                    self._cost_index[perm] = k

    @property
    def g_sizes(self) -> list[int]:
        """|G[k]| for k = 0..cb -- the first row of the paper's Table 2."""
        return [len(members) for members in self.classes]

    @property
    def s8_sizes(self) -> list[int]:
        """|S8[k]| = 2**n * |G[k]| -- the second row of Table 2.

        By Theorem 2, composing with the 2**n free NOT layers maps G[k]
        bijectively onto the cost-k elements of the full symmetric group
        on binary patterns.
        """
        factor = 2**self.n_qubits
        return [factor * size for size in self.g_sizes]

    def cost_of(self, target: Permutation) -> int | None:
        """Minimal NOT-free cost of a reversible target, if within bound."""
        return self._cost_index.get(target)

    def members(self, cost: int) -> list[Permutation]:
        """G[cost] as a list of permutations."""
        return self.classes[cost]

    def total_synthesized(self) -> int:
        """Total reversible functions covered: sum of |G[k]|."""
        return sum(self.g_sizes)


def find_minimum_cost_circuits(
    library: GateLibrary,
    cost_bound: int = 7,
    cost_model: CostModel = UNIT_COST,
    search: CascadeSearch | None = None,
    paper_pseudocode: bool = False,
) -> CostTable:
    """Run FMCF up to *cost_bound* (the paper used cb = 7).

    Args:
        library: the gate library (paper: 18 gates on 3 qubits).
        cost_bound: highest cost level to enumerate.
        cost_model: integer gate costs (default unit).
        search: optionally reuse an existing (compatible) search engine;
            a fresh engine without parent tracking is created otherwise.
        paper_pseudocode: reproduce the published pseudocode *verbatim*,
            which subtracts G[k-1] ... G[1] but **not** G[0] = {()}.  The
            identity function is then re-counted at the first level where
            a non-trivial cascade restricts to it (cost 3, e.g.
            ``F_BA * V_BA * V_BA``), reproducing the paper's |G[3]| = 52.
            With the default False, G[k] is exactly the set of functions
            of *minimal* cost k (identity has cost 0), giving 51.

    Returns:
        A :class:`CostTable` with the G[k] classes and level sizes.
    """
    if search is None:
        search = CascadeSearch(library, cost_model, track_parents=False)
    search.extend_to(cost_bound)

    n_binary = library.space.n_binary
    s_mask = search.s_mask
    identity_restricted = Permutation.identity(n_binary)
    known: set[bytes] = set() if paper_pseudocode else {identity_restricted.images}
    classes: list[list[Permutation]] = [[identity_restricted]]
    b_sizes = [1]
    for cost in range(1, cost_bound + 1):
        level = search.level(cost)
        b_sizes.append(len(level))
        fresh: dict[bytes, None] = {}
        for perm, mask in level:
            if mask != s_mask:
                continue
            restricted = perm[:n_binary]
            if restricted not in known:
                fresh[restricted] = None
        known.update(fresh)
        classes.append(
            [Permutation.from_images(images) for images in fresh]
        )

    a_sizes = []
    acc = 0
    for size in b_sizes:
        acc += size
        a_sizes.append(acc)
    return CostTable(
        cost_bound=cost_bound,
        n_qubits=library.n_qubits,
        classes=classes,
        b_sizes=b_sizes,
        a_sizes=a_sizes,
        stats=search.stats(),
    )
