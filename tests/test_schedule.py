"""Unit tests for depth analysis (repro.core.schedule)."""

import pytest

from repro.core.circuit import Circuit
from repro.core.schedule import (
    asap_schedule,
    depth,
    gate_wires,
    is_fully_sequential,
    min_depth_implementation,
)
from repro.gates.gate import Gate


class TestGateWires:
    def test_two_qubit(self):
        assert gate_wires(Gate.v(2, 0, 3)) == frozenset({0, 2})

    def test_not(self):
        assert gate_wires(Gate.not_(1, 3)) == frozenset({1})


class TestAsapSchedule:
    def test_empty_circuit(self):
        schedule = asap_schedule(Circuit.empty(3))
        assert schedule.depth == 0
        assert schedule.width == 0

    def test_sequential_cascade(self):
        circuit = Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)
        schedule = asap_schedule(circuit)
        assert schedule.depth == 4
        assert is_fully_sequential(circuit)

    def test_disjoint_gates_share_a_layer(self):
        circuit = Circuit.from_names("F_BA F_DC", 4)
        schedule = asap_schedule(circuit)
        assert schedule.depth == 1
        assert schedule.width == 2

    def test_mixed_parallelism(self):
        # F_BA (wires 0,1) || N_D (wire 3); then F_DC needs wires 2,3.
        circuit = Circuit.from_names("F_BA N_D F_DC", 4)
        schedule = asap_schedule(circuit)
        assert schedule.depth == 2
        assert schedule.layer_names() == [["F_BA", "N_D"], ["F_DC"]]

    def test_schedule_covers_every_gate_once(self):
        circuit = Circuit.from_names("V_CB F_BA V_CA V+_CB F_AB", 3)
        schedule = asap_schedule(circuit)
        placed = sorted(i for layer in schedule.layers for i in layer)
        assert placed == list(range(len(circuit)))

    def test_wire_conflict_never_within_layer(self):
        circuit = Circuit.from_names("F_BA F_CA V_BA N_A F_DC V_DB", 4)
        schedule = asap_schedule(circuit)
        for layer in schedule.layers:
            wires: set[int] = set()
            for index in layer:
                gw = gate_wires(circuit[index])
                assert not (wires & gw)
                wires |= gw


class TestPaperCircuitDepths:
    def test_all_paper_cascades_are_fully_sequential(self):
        cascades = [
            "V_CB F_BA V_CA V+_CB",          # Figure 4
            "V+_CB F_BA V+_CA V_CB",         # Figure 8
            "F_BA V+_CB F_BA V_CA V_CB",     # Figure 9a
            "F_AB V+_CA F_AB V_CA V_CB",     # Figure 9c
        ]
        for names in cascades:
            circuit = Circuit.from_names(names, 3)
            assert is_fully_sequential(circuit), names

    def test_min_depth_implementation_selection(self, library3, search3):
        from repro.core.mce import express_all
        from repro.gates import named

        results = express_all(named.TOFFOLI, library3, search=search3)
        best = min_depth_implementation(results)
        assert depth(best.circuit) == min(depth(r.circuit) for r in results)
