"""Unit tests for verified gate identities (repro.core.identities)."""

import pytest

from repro.core.identities import (
    cnot_emulations,
    commuting_feynman_pairs,
    commuting_pairs,
    identity_catalog,
    inverse_pairs,
    verify_adjoint_closure,
)
from repro.gates.kinds import GateKind
from repro.gates.library import GateLibrary


class TestCommutation:
    def test_exactly_six_commuting_feynman_pairs(self, library3):
        """The collision set behind |G[2]| = 24 (paper prints 30)."""
        pairs = commuting_feynman_pairs(library3)
        assert len(pairs) == 6

    def test_feynman_pairs_share_control_or_target(self, library3):
        for identity in commuting_feynman_pairs(library3):
            a = library3.by_name(identity.left).gate
            b = library3.by_name(identity.right).gate
            assert a.target == b.target or a.control == b.control

    def test_commuting_pairs_verified_both_ways(self, library3):
        for identity in commuting_pairs(library3):
            a = library3.by_name(identity.left).permutation
            b = library3.by_name(identity.right).permutation
            assert a * b == b * a

    def test_noncommuting_example(self, library3):
        a = library3.by_name("F_AB").permutation
        b = library3.by_name("F_BA").permutation
        assert a * b != b * a

    def test_total_commuting_pair_count(self, library3):
        assert len(commuting_pairs(library3)) == 48


class TestInverses:
    def test_twelve_inverse_pairs(self, library3):
        # 6 V/V+ pairs + 6 self-inverse Feynman gates.
        pairs = inverse_pairs(library3)
        assert len(pairs) == 12

    def test_feynman_gates_self_inverse(self, library3):
        self_pairs = [
            p for p in inverse_pairs(library3) if p.left == p.right
        ]
        assert len(self_pairs) == 6
        assert all(p.left.startswith("F") for p in self_pairs)

    def test_v_pairs_with_their_adjoints(self, library3):
        cross = [p for p in inverse_pairs(library3) if p.left != p.right]
        assert len(cross) == 6
        for p in cross:
            names = {p.left, p.right}
            base = p.left.replace("V+", "V")
            assert names == {base, base.replace("V_", "V+_")}


class TestCnotEmulation:
    def test_every_controlled_square_emulates_its_cnot(self, library3):
        emulations = cnot_emulations(library3)
        # 12 controlled gates, each squares to its wire-pair's Feynman.
        assert len(emulations) == 12
        for identity in emulations:
            squared_name = identity.left[:-2]  # strip "^2"
            gate = library3.by_name(squared_name).gate
            feynman = library3.by_name(identity.right).gate
            assert gate.target == feynman.target
            assert gate.control == feynman.control

    def test_squares_differ_from_cnot_on_full_domain(self, library3):
        # The emulation holds on S only -- as 38-label permutations the
        # square and the Feynman gate are distinct.
        v = library3.by_name("V_BA").permutation
        f = library3.by_name("F_BA").permutation
        assert v * v != f


class TestAdjointClosure:
    def test_three_qubit_library(self, library3):
        assert verify_adjoint_closure(library3)

    def test_two_qubit_library(self, library2):
        assert verify_adjoint_closure(library2)

    def test_four_qubit_library(self):
        assert verify_adjoint_closure(GateLibrary(4))


class TestCatalog:
    def test_catalog_groups(self, library3):
        catalog = identity_catalog(library3)
        assert set(catalog) == {"commute", "inverse", "cnot-emulation"}
        assert len(catalog["commute"]) == 48
        assert len(catalog["inverse"]) == 12
        assert len(catalog["cnot-emulation"]) == 12
