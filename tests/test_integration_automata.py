"""Integration: Section 4 end-to-end -- synthesize, run, analyze machines."""

import random
from fractions import Fraction

import numpy as np

from repro.automata.hmm import QuantumHMM
from repro.automata.machine import QuantumStateMachine
from repro.automata.markov import MarkovChain
from repro.automata.rng import ControlledRandomBitGenerator
from repro.automata.spec import MachineSynthesisSpec, synthesize_machine
from repro.sim.measure import (
    empirical_distribution,
    total_variation_distance,
)

HALF = Fraction(1, 2)


class TestLazyCoinMachine:
    """A machine that re-flips its state only when told to."""

    def build(self, library2):
        rows = {
            ((0,), (0,)): (0, 0),
            ((0,), (1,)): (0, 1),
            ((1,), (0,)): (1, "?"),
            ((1,), (1,)): (1, "?"),
        }
        spec = MachineSynthesisSpec(
            input_wires=(0,), state_wires=(1,), rows=rows
        )
        return synthesize_machine(spec, library2)

    def test_synthesis_and_chain(self, library2):
        machine, result = self.build(library2)
        assert result.cost == 1
        flip = MarkovChain.from_machine(machine, (1,))
        hold = MarkovChain.from_machine(machine, (0,))
        assert flip.matrix == ((HALF, HALF), (HALF, HALF))
        assert hold.matrix == ((Fraction(1), 0), (0, Fraction(1)))
        assert flip.is_irreducible()
        assert not hold.is_irreducible()

    def test_stationary_distribution_from_simulation(self, library2):
        machine, _result = self.build(library2)
        rng = random.Random(31)
        visits = [0, 0]
        machine.reset()
        for _ in range(4000):
            step = machine.step((1,), rng)
            visits[step.state_after[0]] += 1
        empirical = np.array(visits) / sum(visits)
        chain = MarkovChain.from_machine(machine, (1,))
        assert np.allclose(
            empirical, chain.stationary_distribution(), atol=0.05
        )

    def test_hmm_likelihoods(self, library2):
        machine, _result = self.build(library2)
        hmm = QuantumHMM(machine)
        # Output wire is the (deterministic) input echo.
        assert hmm.sequence_probability(
            [(1,), (1,)], inputs=[(1,), (1,)]
        ) == 1
        assert hmm.sequence_probability(
            [(0,)], inputs=[(1,)]
        ) == 0


class TestControlledRNGEndToEnd:
    def test_sampled_statistics_match_exact_distribution(self):
        generator = ControlledRandomBitGenerator(n_random=2)
        rng = random.Random(7)
        samples = [
            (1,) + generator.generate(rng) for _ in range(6000)
        ]
        tv = total_variation_distance(
            generator.exact_distribution(1),
            empirical_distribution(samples),
        )
        assert tv < 0.05

    def test_machine_wrapper_around_rng(self):
        """The RNG circuit doubles as a memoryless state machine."""
        generator = ControlledRandomBitGenerator(n_random=2)
        machine = QuantumStateMachine(
            generator.circuit,
            input_wires=(0,),
            state_wires=(1, 2),
            output_wires=(1, 2),
        )
        joint = machine.joint_distribution((1,), (0, 0))
        outputs = {out for (out, _nxt) in joint}
        assert len(outputs) == 4
        assert sum(joint.values()) == 1
