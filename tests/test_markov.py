"""Unit tests for induced Markov chains (repro.automata.markov)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.automata.machine import QuantumStateMachine
from repro.automata.markov import MarkovChain
from repro.core.circuit import Circuit

HALF = Fraction(1, 2)


@pytest.fixture
def coin_machine():
    return QuantumStateMachine(
        Circuit.from_names("V_BA", 2), input_wires=(0,), state_wires=(1,)
    )


class TestConstruction:
    def test_valid_chain(self):
        chain = MarkovChain([[HALF, HALF], [Fraction(1), Fraction(0)]])
        assert chain.size == 2

    def test_rows_must_sum_to_one(self):
        with pytest.raises(SpecificationError):
            MarkovChain([[HALF, HALF], [HALF, Fraction(1, 4)]])

    def test_rows_must_be_non_negative(self):
        with pytest.raises(SpecificationError):
            MarkovChain([[Fraction(3, 2), Fraction(-1, 2)], [HALF, HALF]])

    def test_matrix_must_be_square(self):
        with pytest.raises(SpecificationError):
            MarkovChain([[Fraction(1)], [Fraction(1), Fraction(0)]])

    def test_int_entries_coerced(self):
        chain = MarkovChain([[1, 0], [0, 1]])
        assert chain.probability(0, 0) == 1


class TestFromMachine:
    def test_randomizing_input(self, coin_machine):
        chain = MarkovChain.from_machine(coin_machine, (1,))
        assert chain.matrix == ((HALF, HALF), (HALF, HALF))

    def test_holding_input(self, coin_machine):
        chain = MarkovChain.from_machine(coin_machine, (0,))
        assert chain.matrix == ((Fraction(1), Fraction(0)),
                                (Fraction(0), Fraction(1)))


class TestEvolution:
    def test_step_distribution(self):
        chain = MarkovChain([[HALF, HALF], [Fraction(1), Fraction(0)]])
        dist = chain.step_distribution((Fraction(1), Fraction(0)))
        assert dist == (HALF, HALF)

    def test_n_step_distribution(self):
        chain = MarkovChain([[HALF, HALF], [HALF, HALF]])
        dist = chain.n_step_distribution((Fraction(1), Fraction(0)), 3)
        assert dist == (HALF, HALF)

    def test_zero_steps_is_identity(self):
        chain = MarkovChain([[HALF, HALF], [HALF, HALF]])
        start = (Fraction(1), Fraction(0))
        assert chain.n_step_distribution(start, 0) == start

    def test_distribution_size_checked(self):
        chain = MarkovChain([[1, 0], [0, 1]])
        with pytest.raises(SpecificationError):
            chain.step_distribution((Fraction(1),))


class TestStationarity:
    def test_uniform_stationary_for_fair_chain(self, coin_machine):
        chain = MarkovChain.from_machine(coin_machine, (1,))
        stationary = chain.stationary_distribution()
        assert np.allclose(stationary, [0.5, 0.5])

    def test_is_stationary_exact(self, coin_machine):
        chain = MarkovChain.from_machine(coin_machine, (1,))
        assert chain.is_stationary((HALF, HALF))
        assert not chain.is_stationary((Fraction(1), Fraction(0)))

    def test_stationary_sums_to_one(self):
        chain = MarkovChain(
            [[HALF, HALF, 0], [0, HALF, HALF], [HALF, 0, HALF]]
        )
        stationary = chain.stationary_distribution()
        assert np.isclose(stationary.sum(), 1.0)
        p = chain.to_numpy()
        assert np.allclose(stationary @ p, stationary)


class TestStructure:
    def test_irreducible_chain(self, coin_machine):
        chain = MarkovChain.from_machine(coin_machine, (1,))
        assert chain.is_irreducible()
        assert len(chain.communicating_classes()) == 1

    def test_reducible_chain(self, coin_machine):
        chain = MarkovChain.from_machine(coin_machine, (0,))
        assert not chain.is_irreducible()
        assert len(chain.communicating_classes()) == 2

    def test_to_numpy_dtype(self):
        chain = MarkovChain([[1, 0], [0, 1]])
        matrix = chain.to_numpy()
        assert matrix.dtype == np.float64

    def test_repr(self):
        assert "size=2" in repr(MarkovChain([[1, 0], [0, 1]]))
