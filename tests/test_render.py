"""Unit tests for rendering (repro.render)."""

import pytest

from repro.core.circuit import Circuit
from repro.core.fmcf import find_minimum_cost_circuits
from repro.gates.gate import Gate
from repro.gates.truth_table import TruthTable
from repro.mvl.labels import label_space
from repro.render.diagram import circuit_diagram
from repro.render.tables import (
    comparison_table_text,
    cost_table_text,
    format_table,
    truth_table_text,
)


class TestDiagram:
    def test_line_per_wire(self):
        text = circuit_diagram(Circuit.from_names("V_CB F_BA", 3))
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("A ")
        assert lines[2].startswith("C ")

    def test_symbols_present(self):
        text = circuit_diagram(Circuit.from_names("V_CB F_BA V_CA V+_CB", 3))
        assert "[V]" in text
        assert "[V+]" in text
        assert "(+)" in text
        assert "●" in text

    def test_not_gate_symbol(self):
        text = circuit_diagram(Circuit.from_names("N_B", 3))
        assert "[X]" in text

    def test_span_bar_between_distant_wires(self):
        # V_CA spans wire B: the middle line gets a vertical bar.
        text = circuit_diagram(Circuit.from_names("V_CA", 3))
        lines = text.splitlines()
        assert "│" in lines[1]

    def test_columns_aligned(self):
        text = circuit_diagram(Circuit.from_names("V_CB F_BA V_CA", 3))
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_custom_wire_names(self):
        text = circuit_diagram(
            Circuit.from_names("F_BA", 2), wire_names=["ctl", "tgt"]
        )
        assert text.splitlines()[0].startswith("ctl")

    def test_empty_circuit(self):
        text = circuit_diagram(Circuit.empty(2))
        assert len(text.splitlines()) == 2


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len({len(line) for line in lines}) == 1

    def test_indent(self):
        text = format_table(["x"], [[1]], indent="  ")
        assert all(line.startswith("  ") for line in text.splitlines())


class TestTruthTableText:
    def test_table1_rendering(self):
        space = label_space(2, reduced=False, ordering="grouped")
        table = TruthTable.from_gate(Gate.v(1, 0, 2), space)
        text = truth_table_text(table)
        lines = text.splitlines()
        assert len(lines) == 18  # header + rule + 16 rows
        assert "V0" in text
        # Row 3 maps to row 7 (paper Table 1).
        row3 = lines[4]
        assert row3.split()[-1] == "7"


class TestCostTableText:
    def test_includes_rows(self, library3):
        table = find_minimum_cost_circuits(library3, cost_bound=2)
        text = cost_table_text(table)
        assert "|G[k]|" in text
        assert "|B[k]|" in text
        assert "24" in text

    def test_paper_row_optional(self, library3):
        table = find_minimum_cost_circuits(library3, cost_bound=2)
        text = cost_table_text(table, paper_g=[1, 6, 30])
        assert "paper" in text and "30" in text


class TestComparisonTableText:
    def test_renders_rows(self):
        from repro.baselines.compare import ComparisonRow

        rows = [ComparisonRow("peres", 2, 6, 2, 6, 4)]
        text = comparison_table_text(rows)
        assert "peres" in text and "saving" in text
        assert text.splitlines()[-1].split()[-1] == "2"
