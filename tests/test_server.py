"""Lifecycle and protocol tests for the synthesis service (repro.server).

Covers the service's whole life: start, serving under concurrency,
SIGHUP store reload (both in-process and against a real ``repro
serve`` subprocess), malformed requests mapping to structured errors,
and the golden guarantee that ``repro synth --server`` output is
byte-identical to ``repro synth --store`` (body and ``--save`` files).
"""

from __future__ import annotations

import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.client import ServeClient, http_request, wait_until_ready
from repro.core.batch import BatchSynthesizer
from repro.core.search import CascadeSearch
from repro.core.store import save_search
from repro.errors import (
    CostBoundExceededError,
    FrozenSearchError,
    InvalidPermutationError,
    ProtocolError,
    ServerError,
    SpecificationError,
)
from repro.gates.library import GateLibrary
from repro.io import open_store, result_to_dict
from repro.server import BackgroundServer, parse_address
from repro.server.protocol import error_payload, error_to_exception

BOUND = 4


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "closure.rpro"
    search = CascadeSearch(GateLibrary(3), track_parents=True)
    search.extend_to(BOUND)
    save_search(search, path)
    return str(path)


@pytest.fixture(scope="module")
def server(store_path):
    with BackgroundServer(store_path) as srv:
        yield srv


@pytest.fixture(scope="module")
def reference(store_path):
    """A local BatchSynthesizer over the same store (ground truth)."""
    _header, _library, search = open_store(store_path)
    return BatchSynthesizer(search)


@pytest.fixture()
def client(server):
    with ServeClient(server.address_text) as handle:
        yield handle


class TestProtocolUnits:
    def test_parse_address_forms(self):
        from repro.server.protocol import DEFAULT_PORT

        assert parse_address("1.2.3.4:99") == ("1.2.3.4", 99)
        assert parse_address(":99") == ("127.0.0.1", 99)
        assert parse_address("99") == ("127.0.0.1", 99)
        assert parse_address("myhost") == ("myhost", DEFAULT_PORT)

    def test_parse_address_rejects_bad_ports(self):
        with pytest.raises(SpecificationError):
            parse_address("host:notaport")
        with pytest.raises(SpecificationError):
            parse_address("host:99999")

    def test_cost_bound_error_roundtrips_byte_identical(self):
        original = CostBoundExceededError("permutation (7,8)", 4)
        payload, status = error_payload(original)
        assert status == 422 and payload["code"] == "cost-bound-exceeded"
        rebuilt = error_to_exception(payload)
        assert isinstance(rebuilt, CostBoundExceededError)
        assert str(rebuilt) == str(original)
        assert rebuilt.cost_bound == 4

    def test_unknown_code_becomes_server_error(self):
        exc = error_to_exception({"code": "???", "message": "boom"})
        assert isinstance(exc, ServerError) and "boom" in str(exc)

    def test_internal_errors_do_not_leak_messages(self):
        payload, status = error_payload(RuntimeError("secret detail"))
        assert status == 500
        assert "secret" not in payload["message"]


class TestFrozenSearch:
    """The thread-safety contract the service relies on."""

    def test_freeze_blocks_mutation(self, store_path):
        _h, _lib, search = open_store(store_path)
        search.freeze()
        assert search.frozen
        with pytest.raises(FrozenSearchError):
            search.extend_to(BOUND + 1)
        with pytest.raises(FrozenSearchError):
            search.use_kernel("translate")
        with pytest.raises(FrozenSearchError):
            search.attach_remainder_index(BOUND, {})
        # Within-bound extend_to stays a no-op, not an error.
        search.extend_to(BOUND)

    def test_frozen_store_search_still_serves(self, store_path, reference):
        _h, _lib, search = open_store(store_path)
        batch = BatchSynthesizer(search.freeze()).warm()
        from repro.gates import named

        want = reference.synthesize(named.TARGETS["peres"])
        got = batch.synthesize(named.TARGETS["peres"])
        assert result_to_dict(got) == result_to_dict(want)
        assert batch.cost_table().classes == reference.cost_table().classes

    def test_warm_is_idempotent(self, store_path):
        _h, _lib, search = open_store(store_path)
        batch = BatchSynthesizer(search)
        assert batch.warm() is batch
        assert batch.warm() is batch


class TestServing:
    def test_healthz(self, client, store_path):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["store"] == store_path
        assert health["expanded_to"] == BOUND

    def test_store_info_matches_header(self, client, reference):
        info = client.store_info()
        assert info["expanded_to"] == BOUND
        assert info["total_seen"] == reference.search.total_seen()
        assert info["kernel"] == "vector"
        assert info["track_parents"] is True
        assert info["index_entries"] == len(reference.remainder_index)

    def test_synth_matches_local_store(self, client, reference):
        from repro.gates import named

        payload = client.synth("peres")
        local = reference.synthesize(named.TARGETS["peres"])
        assert payload["cost"] == local.cost == 4
        assert payload["results"] == [result_to_dict(local)]

    def test_synth_all_matches_local_store(self, client, reference):
        from repro.gates import named

        payload = client.synth("peres", all=True)
        local = reference.synthesize_all(named.TARGETS["peres"])
        assert payload["results"] == [result_to_dict(r) for r in local]

    def test_synth_results_are_verified_locally(self, client):
        from repro.sim.verify import verify_synthesis

        results = client.synth_results("peres")
        assert len(results) == 1
        assert verify_synthesis(results[0])

    def test_cost_table_matches_local_store(self, client, reference):
        table = reference.cost_table()
        payload = client.cost_table()
        assert payload["g_sizes"] == [len(c) for c in table.classes]
        assert payload["b_sizes"] == list(table.b_sizes)
        assert payload["a_sizes"] == list(table.a_sizes)

    def test_cost_table_members(self, client, reference):
        payload = client.cost_table(cost_bound=2, include_members=True)
        table = reference.cost_table(2)
        assert payload["members"] == [
            [p.cycle_string() for p in members] for members in table.classes
        ]

    def test_over_bound_target_raises_cost_bound_error(self, client):
        with pytest.raises(CostBoundExceededError) as excinfo:
            client.synth("toffoli")  # cost 5 > stored bound 4
        assert excinfo.value.cost_bound == BOUND

    def test_per_query_cost_bound(self, client):
        assert client.synth("peres", cost_bound=4)["cost"] == 4
        with pytest.raises(CostBoundExceededError) as excinfo:
            client.synth("peres", cost_bound=3)
        assert excinfo.value.cost_bound == 3
        # A target missing from the index entirely must still cite the
        # *query* bound (like a local BatchSynthesizer(cost_bound=3)),
        # not the deeper serving bound.
        with pytest.raises(CostBoundExceededError) as excinfo:
            client.synth("toffoli", cost_bound=3)
        assert excinfo.value.cost_bound == 3

    def test_bad_target_is_structured_error(self, client):
        with pytest.raises(InvalidPermutationError):
            client.synth("(1,2,99)")

    def test_http_healthz_and_synth(self, server):
        status, health = http_request(server.address_text, "/healthz")
        assert status == 200 and health["status"] == "ok"
        status, payload = http_request(
            server.address_text, "/synth", method="POST",
            body={"target": "peres"},
        )
        assert status == 200 and payload["cost"] == 4

    def test_http_error_statuses(self, server):
        status, body = http_request(server.address_text, "/no-such")
        assert status == 400 and body["error"]["code"] == "protocol"
        status, body = http_request(
            server.address_text, "/synth", method="POST",
            body={"target": "toffoli"},
        )
        assert status == 422
        assert body["error"]["code"] == "cost-bound-exceeded"


class TestMalformedRequests:
    def test_bad_json_line_yields_protocol_error(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            stream = sock.makefile("rwb")
            stream.write(b"{not json at all\n")
            stream.flush()
            import json

            reply = json.loads(stream.readline())
            assert reply["ok"] is False
            assert reply["error"]["code"] == "protocol"
            # The connection survives a malformed line.
            stream.write(
                b'{"id": 2, "op": "healthz", "params": {}}\n'
            )
            stream.flush()
            reply = json.loads(stream.readline())
            assert reply["ok"] is True and reply["id"] == 2

    def test_unknown_op_names_the_op(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            stream = sock.makefile("rwb")
            stream.write(b'{"id": 1, "op": "bogus"}\n')
            stream.flush()
            import json

            reply = json.loads(stream.readline())
            assert reply["ok"] is False
            assert "bogus" in reply["error"]["message"]

    def test_large_request_line_is_served_not_reset(self, server):
        # Lines between the old 1 MB stream limit and MAX_BODY used to
        # be dropped with a silent connection reset; they must parse
        # (and here fail as a bad target, structurally).
        spec = "(" + "9" * (2 << 20) + ")"
        with ServeClient(server.address_text) as handle:
            with pytest.raises(InvalidPermutationError):
                handle.synth(spec)
            assert handle.healthz()["status"] == "ok"  # conn still usable

    def test_oversized_line_gets_structured_refusal(self, server):
        import json

        from repro.server.protocol import MAX_BODY

        blob = b'{"id":1,"op":"synth","params":{"target":"' + (
            b"x" * (MAX_BODY + 1024)
        )
        with socket.create_connection(server.address, timeout=30) as sock:
            sock.sendall(blob)
            reply = json.loads(sock.makefile("rb").readline())
            assert reply["ok"] is False
            assert reply["error"]["code"] == "protocol"
            assert "exceeds" in reply["error"]["message"]

    def test_http_garbage_gets_400(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            sock.sendall(b"GARBAGE\r\n\r\n")
            assert sock.recv(200).startswith(b"HTTP/1.1 400")

    def test_client_rejects_wrong_params_type(self, client):
        with pytest.raises(ProtocolError):
            client.call("synth", target=123)


class TestConcurrency:
    def test_concurrent_clients_agree_with_local_store(
        self, server, reference
    ):
        from repro.gates import named

        specs = ["peres", "g2", "g3", "g4"]
        expected = {
            spec: result_to_dict(reference.synthesize(named.TARGETS[spec]))
            for spec in specs
        }
        errors: list = []

        def worker() -> None:
            try:
                with ServeClient(server.address_text) as handle:
                    for _round in range(5):
                        for spec in specs:
                            payload = handle.synth(spec)
                            assert payload["results"][0] == expected[spec]
            except Exception as exc:  # noqa: BLE001 -- surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors

    def test_64_target_batch_identical_to_synthesize_many(
        self, server, reference
    ):
        # 64 in-bound targets spread over every cost level, NOT layers
        # included (the S8 coset), exactly as a traffic mix would be.
        targets = []
        for cost in range(BOUND + 1):
            targets.extend(reference.targets_at_cost(cost, True))
        targets = targets[:64]
        assert len(targets) == 64
        specs = [target.cycle_string() for target in targets]
        want = [
            result_to_dict(result)
            for result in reference.synthesize_many(targets)
        ]
        with ServeClient(server.address_text) as handle:
            reply = handle.synth_batch(specs)
        assert reply["count"] == 64 and reply["failures"] == 0
        got = [entry["result"] for entry in reply["results"]]
        assert got == want

    def test_mixed_batch_reports_per_target_failures(self, client):
        reply = client.synth_batch(["peres", "toffoli", "g2"])
        oks = [entry["ok"] for entry in reply["results"]]
        assert oks == [True, False, True]
        assert reply["failures"] == 1
        error = reply["results"][1]["error"]
        assert error["code"] == "cost-bound-exceeded"

    def test_unparseable_spec_fails_only_its_entry(self, client, reference):
        from repro.gates import named

        reply = client.synth_batch(["(1,2,99)", "peres"])
        assert [entry["ok"] for entry in reply["results"]] == [False, True]
        assert reply["results"][0]["error"]["code"] == "bad-target"
        assert reply["results"][1]["result"] == result_to_dict(
            reference.synthesize(named.TARGETS["peres"])
        )


class TestReload:
    def test_in_process_reload_swaps_atomically(self, store_path):
        with BackgroundServer(store_path) as srv:
            with ServeClient(srv.address_text) as handle:
                before = handle.healthz()["reloads"]
                old = handle.synth("peres")
                srv.reload()
                health = handle.healthz()
                assert health["reloads"] == before + 1
                assert health["last_reload_error"] is None
                assert handle.synth("peres") == old

    def test_failed_reload_keeps_serving(self, store_path, tmp_path):
        import shutil

        moving = tmp_path / "moving.rpro"
        shutil.copy(store_path, moving)
        with BackgroundServer(str(moving)) as srv:
            with ServeClient(srv.address_text) as handle:
                old = handle.synth("peres")
                # Replace (never truncate!) the store with garbage: the
                # server's memmap of the old inode must stay intact, so
                # corruption arrives the way `save_search` writes --
                # atomically, via rename.
                corrupt = tmp_path / "corrupt.tmp"
                corrupt.write_bytes(b"definitely not a store")
                os.replace(corrupt, moving)
                srv.reload()
                health = handle.healthz()
                assert health["reloads"] == 0
                assert "StoreError" in health["last_reload_error"]
                # The original store keeps serving.
                assert handle.synth("peres") == old


class TestServeSubprocess:
    """The real `repro serve` process: ready line, SIGHUP, SIGTERM."""

    def test_sighup_reload_and_sigterm_shutdown(self, store_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", store_path,
                "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            address = None
            for _ in range(200):
                line = proc.stdout.readline()
                if not line:
                    break
                match = re.search(r"listening on (\S+) ", line)
                if match:
                    address = match.group(1)
                    break
            assert address, "server never printed its ready line"
            wait_until_ready(address, timeout=30)

            with ServeClient(address) as handle:
                assert handle.synth("peres")["cost"] == 4
                proc.send_signal(signal.SIGHUP)
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    if handle.healthz()["reloads"] == 1:
                        break
                    time.sleep(0.05)
                assert handle.healthz()["reloads"] == 1
                assert handle.synth("peres")["cost"] == 4

            # An idle connection left open must not hang the graceful
            # shutdown (Python >= 3.12 wait_closed() waits on handlers).
            idle = ServeClient(address).connect()
            try:
                proc.send_signal(signal.SIGTERM)
                assert proc.wait(timeout=20) == 0
            finally:
                idle.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestCliGolden:
    """`synth --server` output is byte-identical to `synth --store`."""

    @staticmethod
    def _body(text: str) -> str:
        """Everything after the backend banner (the first line)."""
        return text.split("\n", 1)[1]

    def test_single_target_output_identical(
        self, server, store_path, capsys, tmp_path
    ):
        store_save = tmp_path / "result.json"
        assert main(
            ["synth", "peres", "--store", store_path,
             "--save", str(store_save)]
        ) == 0
        store_out = capsys.readouterr().out
        server_save = tmp_path / "result_server.json"
        assert main(
            ["synth", "peres", "--server", server.address_text,
             "--save", str(server_save)]
        ) == 0
        server_out = capsys.readouterr().out
        assert self._body(store_out).replace(
            str(store_save), "SAVE"
        ) == self._body(server_out).replace(str(server_save), "SAVE")
        assert store_save.read_bytes() == server_save.read_bytes()

    def test_all_implementations_identical(self, server, store_path, capsys):
        assert main(["synth", "g4", "--all", "--store", store_path]) == 0
        store_out = capsys.readouterr().out
        assert main(
            ["synth", "g4", "--all", "--server", server.address_text]
        ) == 0
        server_out = capsys.readouterr().out
        assert self._body(store_out) == self._body(server_out)

    def test_batch_output_identical(
        self, server, store_path, capsys, tmp_path
    ):
        batch_file = tmp_path / "targets.txt"
        batch_file.write_text("peres\ng2\ntoffoli\n(5,7,6,8)\n")
        store_code = main(
            ["synth", "--store", store_path, "--batch", str(batch_file)]
        )
        store_out = capsys.readouterr().out
        server_code = main(
            ["synth", "--server", server.address_text,
             "--batch", str(batch_file)]
        )
        server_out = capsys.readouterr().out
        assert store_code == server_code == 1  # toffoli exceeds bound 4
        assert self._body(store_out) == self._body(server_out)

    def test_store_and_server_are_mutually_exclusive(
        self, server, store_path, capsys
    ):
        assert main(
            ["synth", "peres", "--store", store_path,
             "--server", server.address_text]
        ) == 1
        assert "at most one" in capsys.readouterr().err
