"""Serialization: circuits, targets, batches and synthesis results.

Downstream users need to persist synthesized cascades and reload them
without re-running the search.  The format is deliberately plain:

.. code-block:: json

    {
      "n_qubits": 3,
      "gates": ["V_CB", "F_BA", "V_CA", "V+_CB"],
      "target": "(5,7,6,8)",
      "cost": 4
    }

Gate names are the paper-style names (``V_BA``/``V+_AB``/``F_CA``/``N_B``)
already used everywhere else in the library, and targets use 1-based
cycle notation on the binary patterns, so files stay readable next to
the paper.

Two heavier persistence layers build on this module:

* batch target files (:func:`load_targets`) -- one named target or cycle
  string per line -- and batch result files
  (:func:`save_batch_results` / :func:`load_batch_results`), feeding the
  ``repro synth --batch`` workflow;
* the binary closure store of :mod:`repro.core.store`, re-exported here
  (:func:`save_search` / :func:`load_search` / :func:`open_store` /
  :func:`read_header` / :func:`verify_store` / :func:`migrate_store`)
  so ``repro.io`` is the one-stop persistence facade.  Stores are
  written in the memory-mapped v2 format (opened in O(queries touched),
  remainder index included) or the chunk-compressed v3 format
  (``--format-version 3``: same data, zstd/zlib-compressed sections,
  decompressed on touch); legacy v1 files stay readable and
  :func:`migrate_store` rewrites any version as any other.

:func:`load_access_log` parses the NDJSON request log ``repro serve
--access-log`` writes (one structured record per served request).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import SpecificationError
from repro.core.circuit import Circuit
from repro.core.mce import SynthesisResult
from repro.core.store import (  # noqa: F401  (re-exported persistence facade)
    StoreHeader,
    load_search,
    migrate_store,
    open_store,
    read_header,
    save_search,
    verify_store,
)
from repro.perm.permutation import Permutation


def resolve_cost_bound(
    requested: int | None, available: int, what: str
) -> int:
    """Resolve a requested cost bound against what an artifact covers.

    The one shared rule for everything that answers from a precomputed
    closure -- ``--store`` CLI paths, server startup, per-query server
    bounds: ``None`` means "whatever is available", anything deeper
    than *available* is refused with the remedy spelled out.

    Raises:
        SpecificationError: *requested* exceeds *available*.
    """
    if requested is None:
        return available
    if requested > available:
        raise SpecificationError(
            f"{what} only covers cost <= {available}; re-run "
            f"`repro precompute --cost-bound {requested}` to go deeper"
        )
    return requested


def circuit_to_dict(circuit: Circuit) -> dict[str, Any]:
    """Plain-dict form of a circuit."""
    return {
        "n_qubits": circuit.n_qubits,
        "gates": list(circuit.names()),
    }


def circuit_from_dict(data: dict[str, Any]) -> Circuit:
    """Rebuild a circuit from :func:`circuit_to_dict` output.

    Records carrying a non-binary ``radix`` key rebuild through the MV
    gate parser (``X01_B`` / ``CX+1_AB`` names); everything else takes
    the paper-name path unchanged.

    Raises:
        SpecificationError: on missing keys or malformed gate names.
    """
    try:
        n_qubits = int(data["n_qubits"])
        gates = list(data["gates"])
        radix = int(data.get("radix", 2))
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecificationError(f"malformed circuit record: {exc}") from None
    if n_qubits < 1:
        raise SpecificationError(f"bad register width {n_qubits}")
    from repro.errors import InvalidGateError

    try:
        if radix != 2:
            from repro.gates.mv import MVGate

            return Circuit(
                tuple(
                    MVGate.from_name(name, n_qubits, radix) for name in gates
                ),
                n_qubits,
            )
        return Circuit.from_names(gates, n_qubits)
    except InvalidGateError as exc:
        raise SpecificationError(str(exc)) from None


def _result_radix(result: SynthesisResult) -> int:
    """Wire radix of a result, derived from its target degree.

    Binary results target the ``2**n`` binary patterns; MV results
    target the full ``radix**n`` digit space.
    """
    n = result.circuit.n_qubits
    degree = result.target.degree
    if degree == 2**n:
        return 2
    for radix in (3, 4):
        if radix**n == degree:
            return radix
    raise SpecificationError(
        f"target degree {degree} matches no supported radix on "
        f"{n} wires"
    )


def result_to_dict(result: SynthesisResult) -> dict[str, Any]:
    """Plain-dict form of a synthesis result (circuit + provenance).

    MV results additionally record their ``radix``; binary records are
    byte-identical to what this function has always produced.
    """
    record = circuit_to_dict(result.circuit)
    radix = _result_radix(result)
    if radix != 2:
        record["radix"] = radix
    record["target"] = result.target.cycle_string()
    record["cost"] = result.cost
    record["not_mask"] = result.not_mask
    return record


def result_circuit_from_dict(data: dict[str, Any]) -> tuple[Circuit, Permutation]:
    """Rebuild (circuit, target) from a result record and re-verify.

    The stored target is recomputed from the circuit and compared, so a
    corrupted or hand-edited file fails loudly instead of silently
    returning a wrong circuit.

    Raises:
        SpecificationError: if the circuit no longer realizes the stored
            target or the stored cost disagrees.
    """
    circuit = circuit_from_dict(data)
    try:
        radix = int(data.get("radix", 2))
    except (TypeError, ValueError) as exc:
        raise SpecificationError(f"malformed result record: {exc}") from None
    degree = radix**circuit.n_qubits
    try:
        target = Permutation.from_cycle_string(degree, str(data["target"]))
        stored_cost = int(data["cost"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecificationError(f"malformed result record: {exc}") from None
    from repro.errors import InvalidCircuitError, NonBinaryControlError

    if radix != 2:
        # MV cascades live entirely at the digit-permutation level: the
        # circuit's recomputed label permutation is the whole semantics,
        # and cost follows the library convention carried by the gates.
        from repro.mvl.labels import label_space

        realized = circuit.permutation(
            label_space(circuit.n_qubits, radix=radix)
        )
        if realized != target:
            raise SpecificationError(
                f"stored circuit realizes {realized.cycle_string()}, "
                f"record claims {data['target']}"
            )
        if circuit.cost() != stored_cost:
            raise SpecificationError(
                f"stored cost {stored_cost} disagrees with the circuit's "
                f"gate cost {circuit.cost()}"
            )
        return circuit, target
    try:
        realized = circuit.binary_permutation()
    except (InvalidCircuitError, NonBinaryControlError) as exc:
        raise SpecificationError(
            f"stored circuit is not a reversible cascade: {exc}"
        ) from None
    if realized != target:
        raise SpecificationError(
            f"stored circuit realizes {realized.cycle_string()}, "
            f"record claims {data['target']}"
        )
    if circuit.two_qubit_count != stored_cost:
        raise SpecificationError(
            f"stored cost {stored_cost} disagrees with the circuit's "
            f"{circuit.two_qubit_count} two-qubit gates"
        )
    return circuit, target


def result_from_dict(data: dict[str, Any]) -> SynthesisResult:
    """Rebuild a full :class:`SynthesisResult` from a result record.

    The inverse of :func:`result_to_dict`, with the same re-verification
    as :func:`result_circuit_from_dict` -- the circuit must actually
    realize the stored target at the stored cost.  This is how
    ``repro synth --server`` turns the service's JSON records back into
    first-class results: the cascade's label permutation is recomputed
    locally (on the default reduced label space), so a corrupted or
    malicious response cannot smuggle in a wrong circuit.

    Raises:
        SpecificationError: malformed record or failed re-verification.
    """
    circuit, target = result_circuit_from_dict(data)
    try:
        not_mask = int(data.get("not_mask", 0))
        radix = int(data.get("radix", 2))
    except (TypeError, ValueError) as exc:
        raise SpecificationError(f"malformed result record: {exc}") from None
    if radix != 2:
        # MV libraries have no NOT layer (Theorem 2 is binary), so the
        # cascade *is* the whole circuit and its label permutation is the
        # target itself.
        from repro.mvl.labels import label_space

        space = label_space(circuit.n_qubits, radix=radix)
        return SynthesisResult(
            target=target,
            circuit=circuit,
            cost=int(data["cost"]),
            not_mask=not_mask,
            cascade_permutation=circuit.permutation(space),
        )
    two_qubit = Circuit(
        tuple(g for g in circuit.gates if g.kind.is_two_qubit),
        circuit.n_qubits,
    )
    return SynthesisResult(
        target=target,
        circuit=circuit,
        cost=int(data["cost"]),
        not_mask=not_mask,
        cascade_permutation=two_qubit.permutation(),
    )


def save_result(result: SynthesisResult, path: str | Path) -> None:
    """Write a synthesis result to a JSON file."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2) + "\n")


def load_result(path: str | Path) -> tuple[Circuit, Permutation]:
    """Load and re-verify a synthesis result from a JSON file."""
    data = json.loads(Path(path).read_text())
    return result_circuit_from_dict(data)


# -- batch files -----------------------------------------------------------------------


def parse_target(text: str, n_qubits: int = 3, radix: int = 2) -> Permutation:
    """Resolve a target spec: a named target or paper cycle notation.

    Named targets (``toffoli``, ``peres``, ``fredkin``, ``g2`` ...) are
    the 3-qubit catalog of :mod:`repro.gates.named`; anything else is
    parsed as 1-based cycle notation on the ``radix**n_qubits`` labels,
    e.g. ``"(5,7,6,8)"``.  The named catalog is binary-only.
    """
    from repro.gates import named

    key = text.strip().lower()
    if radix == 2 and n_qubits == 3 and key in named.TARGETS:
        return named.TARGETS[key]
    return Permutation.from_cycle_string(radix**n_qubits, text)


def load_targets(
    path: str | Path, n_qubits: int = 3, radix: int = 2
) -> list[tuple[str, Permutation]]:
    """Read a batch target file: one target spec per line.

    Blank lines and ``#`` comment lines are skipped.  Returns
    ``(original text, permutation)`` pairs in file order.

    Raises:
        SpecificationError: on an unparseable line (with its number).
    """
    from repro.errors import InvalidPermutationError

    pairs: list[tuple[str, Permutation]] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        spec = line.split("#", 1)[0].strip()
        if not spec:
            continue
        try:
            pairs.append((spec, parse_target(spec, n_qubits, radix)))
        except InvalidPermutationError as exc:
            raise SpecificationError(
                f"{path}:{lineno}: bad target {spec!r}: {exc}"
            ) from None
    return pairs


def _parse_access_record(
    path: str | Path, lineno: int, line: str
) -> dict[str, Any]:
    """One NDJSON access-log line as a validated record dict."""
    required = ("op", "store", "queue_wait_ms", "execute_ms", "total_ms",
                "outcome")
    try:
        record = json.loads(line)
    except ValueError:
        raise SpecificationError(
            f"{path}:{lineno}: access-log line is not valid JSON"
        ) from None
    if not isinstance(record, dict):
        raise SpecificationError(
            f"{path}:{lineno}: access-log record must be a JSON object"
        )
    missing = [key for key in required if key not in record]
    if missing:
        raise SpecificationError(
            f"{path}:{lineno}: access-log record is missing "
            + ", ".join(missing)
        )
    return record


def rotated_access_logs(path: str | Path) -> list[Path]:
    """The rotated set for an access log, oldest first, active log last.

    ``repro serve --access-log-max-bytes`` rotates ``log -> log.1 ->
    log.2 ...`` (higher suffix = older), so reading ``log.N ... log.1,
    log`` yields every surviving record in arrival order.  Only numeric
    suffixes belong to the set; missing files are simply absent.
    """
    base = Path(path)
    prefix = base.name + "."
    indexed: list[tuple[int, Path]] = []
    if base.parent.is_dir():
        for entry in base.parent.iterdir():
            suffix = entry.name[len(prefix):]
            if entry.name.startswith(prefix) and suffix.isdigit():
                indexed.append((int(suffix), entry))
    ordered = [entry for _index, entry in sorted(indexed, reverse=True)]
    ordered.append(base)
    return ordered


def load_access_log(
    path: str | Path, strict: bool = True, rotated: bool = False
):
    """Parse a ``repro serve --access-log`` NDJSON file, streaming.

    One record per request, in arrival order; blank lines are skipped.
    The file is read line by line, never whole -- access logs of
    long-lived servers outgrow RAM comfort long before the closure
    store does.  Each record carries at least ``op``, ``store``,
    ``queue_wait_ms``, ``execute_ms``, ``total_ms`` and ``outcome``
    (``"ok"`` or a structured error code).

    With ``rotated=True`` the whole rotated set is read in arrival
    order (``path.N`` ... ``path.1``, then ``path`` itself -- see
    :func:`rotated_access_logs`), returning one combined record list.

    A crashed -- or still-running -- writer can leave a partial final
    line, and a crash *during rotation* can leave one at the end of any
    file in a rotated set.  With ``strict=True`` (the default) any
    malformed line raises; with ``strict=False`` the return value
    becomes ``(records, tail)`` where a malformed line at the end of a
    file is tolerated and described by *tail* (a dict with ``path``,
    ``lineno``, ``reason`` and the truncated ``text``; ``None`` when
    every file ended cleanly).  *tail* describes the most recent
    truncation; when several files were truncated, its ``truncations``
    key lists them all, oldest first.  Malformed lines *before* the
    final line of their file are real corruption and raise in both
    modes, since rotation only ever happens between whole lines.

    Raises:
        SpecificationError: a line is not a JSON object or a record is
            missing one of the required fields (with its line number) --
            for any line under ``strict=True``, for lines before the
            end of their file otherwise.
    """
    paths = rotated_access_logs(path) if rotated else [Path(path)]
    records: list[dict[str, Any]] = []
    truncations: list[dict[str, Any]] = []
    for file_path in paths:
        pending: tuple[int, str, SpecificationError] | None = None
        with open(file_path, encoding="utf-8", errors="replace") as handle:
            for lineno, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                if pending is not None:
                    # The bad line was not the final one after all.
                    raise pending[2]
                try:
                    records.append(
                        _parse_access_record(file_path, lineno, line)
                    )
                except SpecificationError as exc:
                    if strict:
                        raise
                    pending = (lineno, line, exc)
        if pending is not None:
            lineno, line, exc = pending
            truncations.append({
                "path": str(file_path),
                "lineno": lineno,
                "reason": str(exc),
                "text": line.rstrip("\n"),
            })
    if strict:
        return records
    tail = None
    if truncations:
        tail = dict(truncations[-1])
        tail["truncations"] = truncations
    return records, tail


def save_batch_results(
    results: list[SynthesisResult], path: str | Path
) -> None:
    """Write many synthesis results to one JSON file (a list of records)."""
    records = [result_to_dict(result) for result in results]
    Path(path).write_text(json.dumps(records, indent=2) + "\n")


def load_batch_results(
    path: str | Path,
) -> list[tuple[Circuit, Permutation]]:
    """Load and re-verify a batch result file.

    Raises:
        SpecificationError: if the file is not a list of result records
            or any record fails re-verification.
    """
    data = json.loads(Path(path).read_text())
    if not isinstance(data, list):
        raise SpecificationError(
            "batch result file must hold a JSON list of result records"
        )
    return [result_circuit_from_dict(record) for record in data]
