"""Unit tests for placed gates (repro.gates.gate) against Section 3."""

import pytest

from repro.errors import InvalidGateError, NonBinaryControlError
from repro.gates.gate import Gate, wire_letter
from repro.gates.kinds import GateKind
from repro.mvl.patterns import Pattern
from repro.mvl.values import Qv


class TestKinds:
    def test_two_qubit_flags(self):
        assert GateKind.V.is_two_qubit and GateKind.CNOT.is_two_qubit
        assert not GateKind.NOT.is_two_qubit

    def test_controlled_flags(self):
        assert GateKind.V.is_controlled and GateKind.VDAG.is_controlled
        assert not GateKind.CNOT.is_controlled

    def test_default_costs(self):
        assert GateKind.V.default_cost == 1
        assert GateKind.NOT.default_cost == 0

    def test_adjoint_kinds(self):
        assert GateKind.V.adjoint_kind is GateKind.VDAG
        assert GateKind.VDAG.adjoint_kind is GateKind.V
        assert GateKind.CNOT.adjoint_kind is GateKind.CNOT
        assert GateKind.NOT.adjoint_kind is GateKind.NOT


class TestConstruction:
    def test_constructors(self):
        assert Gate.v(1, 0, 3).kind is GateKind.V
        assert Gate.vdag(0, 1, 3).kind is GateKind.VDAG
        assert Gate.cnot(2, 0, 3).kind is GateKind.CNOT
        assert Gate.not_(1, 3).kind is GateKind.NOT

    def test_control_equals_target_rejected(self):
        with pytest.raises(InvalidGateError):
            Gate.v(1, 1, 3)

    def test_missing_control_rejected(self):
        with pytest.raises(InvalidGateError):
            Gate(GateKind.V, 0, None, 3)

    def test_not_with_control_rejected(self):
        with pytest.raises(InvalidGateError):
            Gate(GateKind.NOT, 0, 1, 3)

    def test_wire_range_checks(self):
        with pytest.raises(InvalidGateError):
            Gate.v(3, 0, 3)
        with pytest.raises(InvalidGateError):
            Gate.v(0, 3, 3)


class TestNames:
    def test_paper_subscript_convention(self):
        # First subscript = data wire, second = control (Figure 2).
        assert Gate.v(1, 0, 3).name == "V_BA"
        assert Gate.vdag(0, 1, 3).name == "V+_AB"
        assert Gate.cnot(2, 0, 3).name == "F_CA"
        assert Gate.not_(1, 3).name == "N_B"

    @pytest.mark.parametrize("name", ["V_BA", "V+_AB", "F_CA", "N_B", "V_CB"])
    def test_from_name_roundtrip(self, name):
        assert Gate.from_name(name, 3).name == name

    @pytest.mark.parametrize("bad", ["V_B", "Q_BA", "F_BBB", "N_AB", "", "V+AB"])
    def test_from_name_garbage(self, bad):
        with pytest.raises(InvalidGateError):
            Gate.from_name(bad, 3)

    def test_wire_letter(self):
        assert wire_letter(0) == "A" and wire_letter(3) == "D"


class TestQuaternarySemantics:
    def test_v_fires_on_control_one(self):
        g = Gate.v(1, 0, 3)
        assert g.apply(Pattern([1, 0, 0])) == Pattern([1, Qv.V0, 0])
        assert g.apply(Pattern([1, Qv.V0, 0])) == Pattern([1, 1, 0])

    def test_v_idle_on_control_zero(self):
        g = Gate.v(1, 0, 3)
        p = Pattern([0, 1, 0])
        assert g.apply(p) == p

    def test_v_dont_care_on_mixed_control(self):
        g = Gate.v(1, 0, 3)
        p = Pattern([Qv.V1, 1, 0])
        assert g.apply(p) == p  # paper's identity convention

    def test_vdag_inverse_of_v(self):
        v = Gate.v(1, 0, 3)
        vdag = Gate.vdag(1, 0, 3)
        for code in range(4):
            p = Pattern([1, Qv(code), 0])
            assert vdag.apply(v.apply(p)) == p

    def test_cnot_on_binary(self):
        g = Gate.cnot(2, 0, 3)
        assert g.apply(Pattern([1, 0, 0])) == Pattern([1, 0, 1])
        assert g.apply(Pattern([1, 0, 1])) == Pattern([1, 0, 0])
        assert g.apply(Pattern([0, 0, 1])) == Pattern([0, 0, 1])

    def test_cnot_dont_care_on_mixed_operand(self):
        g = Gate.cnot(2, 0, 3)
        p = Pattern([1, 0, Qv.V0])
        assert g.apply(p) == p
        q = Pattern([Qv.V1, 0, 1])
        assert g.apply(q) == q

    def test_not_acts_on_all_values(self):
        g = Gate.not_(0, 3)
        assert g.apply(Pattern([0, 0, 0])) == Pattern([1, 0, 0])
        assert g.apply(Pattern([Qv.V0, 0, 0])) == Pattern([Qv.V1, 0, 0])


class TestStrictSemantics:
    def test_strict_matches_apply_in_binary_regime(self):
        g = Gate.v(1, 0, 3)
        p = Pattern([1, Qv.V1, 0])
        assert g.strict_apply(p) == g.apply(p)

    def test_strict_raises_on_mixed_control(self):
        g = Gate.v(1, 0, 3)
        with pytest.raises(NonBinaryControlError):
            g.strict_apply(Pattern([Qv.V0, 1, 0]))

    def test_strict_raises_on_mixed_cnot_operand(self):
        g = Gate.cnot(2, 0, 3)
        with pytest.raises(NonBinaryControlError):
            g.strict_apply(Pattern([1, 0, Qv.V1]))

    def test_not_never_strict_fails(self):
        g = Gate.not_(0, 3)
        g.strict_apply(Pattern([Qv.V0, Qv.V1, 1]))  # no raise

    def test_constrained_wires(self):
        assert Gate.v(1, 0, 3).constrained_wires == (0,)
        assert Gate.cnot(2, 1, 3).constrained_wires == (2, 1)
        assert Gate.not_(0, 3).constrained_wires == ()


class TestPermutationRepresentation:
    """The exact cycle structures printed in Section 3."""

    def test_v_ba(self, space3):
        perm = Gate.v(1, 0, 3).permutation(space3)
        assert perm.cycle_string() == "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)"

    def test_vdag_ab(self, space3):
        perm = Gate.vdag(0, 1, 3).permutation(space3)
        assert perm.cycle_string() == "(3,33,7,26)(4,34,8,27)(9,35,15,28)(10,36,16,29)"

    def test_f_ca(self, space3):
        perm = Gate.cnot(2, 0, 3).permutation(space3)
        assert perm.cycle_string() == "(5,6)(7,8)(17,18)(21,22)"

    def test_table1_gate_on_two_qubits(self, space2_full):
        perm = Gate.v(1, 0, 2).permutation(space2_full)
        assert perm.cycle_string() == "(3,7,4,8)"

    def test_v_and_vdag_inverse_permutations(self, space3):
        v = Gate.v(2, 1, 3).permutation(space3)
        vdag = Gate.vdag(2, 1, 3).permutation(space3)
        assert v.inverse() == vdag

    def test_all_gate_permutations_have_order_dividing_4(self, library3):
        for entry in library3.gates:
            assert entry.permutation.order() in (2, 4)

    def test_width_mismatch_rejected(self, space3):
        with pytest.raises(InvalidGateError):
            Gate.v(1, 0, 2).permutation(space3)


class TestTransforms:
    def test_dagger(self):
        assert Gate.v(1, 0, 3).dagger() == Gate.vdag(1, 0, 3)
        assert Gate.cnot(2, 0, 3).dagger() == Gate.cnot(2, 0, 3)

    def test_relabeled(self):
        g = Gate.v(1, 0, 3).relabeled({0: 2, 1: 1, 2: 0})
        assert g.name == "V_BC"

    def test_relabeled_not(self):
        g = Gate.not_(0, 3).relabeled({0: 1, 1: 0, 2: 2})
        assert g.name == "N_B"


class TestUnitary:
    def test_all_kinds_unitary(self):
        for g in (Gate.v(1, 0, 3), Gate.vdag(0, 2, 3), Gate.cnot(2, 1, 3),
                  Gate.not_(1, 3)):
            assert g.unitary.is_unitary()

    def test_v_gate_squared_is_cnot_unitary(self):
        v = Gate.v(1, 0, 3)
        cnot = Gate.cnot(1, 0, 3)
        assert v.unitary @ v.unitary == cnot.unitary

    def test_unitary_cached(self):
        g = Gate.v(1, 0, 3)
        assert g.unitary is g.unitary
