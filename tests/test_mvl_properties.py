"""Property-based tests for the generalized (radix-parametric) LabelSpace.

``test_prop_labels.py`` pins the binary/quaternary reduced space; this
suite exercises the invariants the radix generalization must keep at
radix 2, 3 and 4 and widths 2 and 3: pattern<->label codec roundtrips,
the degenerate mask structure of digit spaces, and ``images_from_map``
bijectivity checking.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import InvalidPermutationError, InvalidValueError
from repro.mvl.labels import label_space
from repro.mvl.patterns import (
    all_digit_patterns,
    digit_pattern_from_int,
    digit_pattern_to_int,
)

radixes = st.sampled_from([2, 3, 4])
widths = st.sampled_from([2, 3])


class TestDigitCodec:
    @given(radixes, widths, st.integers(min_value=0, max_value=4**3 - 1))
    def test_roundtrip(self, radix, width, code):
        code %= radix**width
        pattern = digit_pattern_from_int(code, width, radix)
        assert len(pattern) == width
        assert all(0 <= v < radix for v in pattern)
        assert digit_pattern_to_int(pattern, radix) == code

    @given(radixes, widths)
    @settings(max_examples=12, deadline=None)
    def test_enumeration_is_sorted_and_complete(self, radix, width):
        patterns = list(all_digit_patterns(width, radix))
        assert len(patterns) == radix**width
        assert len(set(patterns)) == len(patterns)
        codes = [digit_pattern_to_int(p, radix) for p in patterns]
        assert codes == list(range(radix**width))

    @given(radixes, widths)
    @settings(max_examples=12, deadline=None)
    def test_out_of_range_codes_are_rejected(self, radix, width):
        with pytest.raises(InvalidValueError):
            digit_pattern_from_int(radix**width, width, radix)
        with pytest.raises(InvalidValueError):
            digit_pattern_from_int(-1, width, radix)


class TestGeneralizedLabelSpace:
    @given(radixes, widths)
    @settings(max_examples=12, deadline=None)
    def test_size_and_s_mask(self, radix, width):
        space = label_space(width, radix=radix)
        if radix == 2:
            # The default binary space is the paper's reduced
            # quaternary space; S is the binary sub-domain.
            assert space.n_binary == 2**width
        else:
            assert space.size == radix**width
            assert space.n_binary == space.size
            assert space.s_mask == (1 << space.size) - 1

    @given(radixes, widths)
    @settings(max_examples=12, deadline=None)
    def test_label_pattern_roundtrip(self, radix, width):
        space = label_space(width, radix=radix)
        for label in range(space.size):
            pattern = space.pattern(label)
            assert pattern in space
            assert space.label(pattern) == label

    @given(st.sampled_from([3, 4]), widths, st.data())
    @settings(max_examples=30, deadline=None)
    def test_digit_spaces_ban_nothing(self, radix, width, data):
        space = label_space(width, radix=radix)
        wires = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=width - 1),
                max_size=width,
            )
        )
        assert space.banned_mask(wires) == 0

    @given(st.sampled_from([3, 4]), widths, st.randoms(use_true_random=False))
    @settings(max_examples=20, deadline=None)
    def test_images_from_map_accepts_any_digit_bijection(
        self, radix, width, rng
    ):
        space = label_space(width, radix=radix)
        shuffled = list(space.patterns)
        rng.shuffle(shuffled)
        mapping = dict(zip(space.patterns, shuffled))
        images = space.images_from_map(lambda p: mapping[tuple(p)])
        assert sorted(images) == list(range(space.size))

    @given(st.sampled_from([3, 4]), widths)
    @settings(max_examples=12, deadline=None)
    def test_images_from_map_rejects_non_bijections(self, radix, width):
        space = label_space(width, radix=radix)
        first = space.pattern(0)
        with pytest.raises(InvalidPermutationError):
            space.images_from_map(lambda p: first)

    @given(st.sampled_from([3, 4]), widths)
    @settings(max_examples=12, deadline=None)
    def test_local_shift_is_a_space_permutation(self, radix, width):
        """A +1 shift on one wire permutes labels in radix-sized orbits."""
        space = label_space(width, radix=radix)
        images = space.images_from_map(
            lambda p: ((p[0] + 1) % radix,) + tuple(p[1:])
        )
        label = 0
        for _ in range(radix):
            label = images[label]
        assert label == 0
