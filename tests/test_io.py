"""Unit tests for JSON persistence (repro.io)."""

import json

import pytest

from repro.errors import SpecificationError
from repro.core.circuit import Circuit
from repro.core.mce import express
from repro.gates import named
from repro.io import (
    circuit_from_dict,
    circuit_to_dict,
    load_result,
    result_to_dict,
    result_circuit_from_dict,
    save_result,
)


class TestCircuitRoundTrip:
    def test_roundtrip(self):
        circuit = Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)
        assert circuit_from_dict(circuit_to_dict(circuit)) == circuit

    def test_with_not_gates(self):
        circuit = Circuit.from_names("N_A F_BA", 3)
        assert circuit_from_dict(circuit_to_dict(circuit)) == circuit

    def test_missing_keys(self):
        with pytest.raises(SpecificationError):
            circuit_from_dict({"gates": ["F_BA"]})

    def test_bad_gate_name(self):
        with pytest.raises(SpecificationError):
            circuit_from_dict({"n_qubits": 3, "gates": ["Q_XY"]})


class TestResultRoundTrip:
    def test_save_and_load(self, tmp_path, library3, search3):
        result = express(named.PERES, library3, search=search3)
        path = tmp_path / "peres.json"
        save_result(result, path)
        circuit, target = load_result(path)
        assert circuit == result.circuit
        assert target == named.PERES

    def test_record_fields(self, library3, search3):
        result = express(named.TOFFOLI, library3, search=search3)
        record = result_to_dict(result)
        assert record["cost"] == 5
        assert record["target"] == "(7,8)"
        assert record["not_mask"] == 0
        assert len(record["gates"]) == 5

    def test_tampered_target_rejected(self, library3, search3):
        result = express(named.PERES, library3, search=search3)
        record = result_to_dict(result)
        record["target"] = "(7,8)"  # lie: claim it's a Toffoli
        with pytest.raises(SpecificationError):
            result_circuit_from_dict(record)

    def test_tampered_cost_rejected(self, library3, search3):
        result = express(named.PERES, library3, search=search3)
        record = result_to_dict(result)
        record["cost"] = 3
        with pytest.raises(SpecificationError):
            result_circuit_from_dict(record)

    def test_probabilistic_circuit_rejected(self):
        record = {
            "n_qubits": 3,
            "gates": ["V_BA"],
            "target": "()",
            "cost": 1,
        }
        with pytest.raises(SpecificationError):
            result_circuit_from_dict(record)

    def test_file_is_valid_json(self, tmp_path, library3, search3):
        result = express(named.G3, library3, search=search3)
        path = tmp_path / "g3.json"
        save_result(result, path)
        data = json.loads(path.read_text())
        assert data["target"] == "(3,4)(5,7)(6,8)"

    def test_not_layer_result_roundtrip(self, tmp_path, library3, search3):
        target = named.not_layer_permutation(0b110) * named.PERES
        result = express(target, library3, search=search3)
        path = tmp_path / "shifted.json"
        save_result(result, path)
        circuit, loaded_target = load_result(path)
        assert loaded_target == target
        assert circuit.binary_permutation() == target


class TestBatchFiles:
    def test_parse_target_named_and_cycles(self):
        from repro.io import parse_target

        assert parse_target("toffoli") == named.TOFFOLI
        assert parse_target("  PERES ") == named.PERES
        assert parse_target("(5,7,6,8)") == named.PERES

    def test_load_targets_skips_blanks_and_comments(self, tmp_path):
        from repro.io import load_targets

        path = tmp_path / "targets.txt"
        path.write_text("# header\n\ntoffoli\n(7,8)  # trailing comment\n")
        pairs = load_targets(path)
        assert [spec for spec, _ in pairs] == ["toffoli", "(7,8)"]
        assert pairs[0][1] == named.TOFFOLI

    def test_load_targets_bad_line_reports_lineno(self, tmp_path):
        from repro.io import load_targets

        path = tmp_path / "targets.txt"
        path.write_text("toffoli\nnot-a-target\n")
        with pytest.raises(SpecificationError, match=":2:"):
            load_targets(path)

    def test_batch_results_roundtrip(self, tmp_path, library3, search3):
        from repro.io import load_batch_results, save_batch_results

        results = [
            express(named.TARGETS[k], library3, search=search3)
            for k in ("peres", "toffoli")
        ]
        path = tmp_path / "batch.json"
        save_batch_results(results, path)
        loaded = load_batch_results(path)
        assert len(loaded) == 2
        for (circuit, target), result in zip(loaded, results):
            assert target == result.target
            assert circuit.binary_permutation() == target

    def test_batch_results_must_be_a_list(self, tmp_path):
        from repro.io import load_batch_results

        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(SpecificationError):
            load_batch_results(path)


def access_record(op="synth", outcome="ok"):
    return {
        "op": op, "store": "main", "queue_wait_ms": 0.1,
        "execute_ms": 1.0, "total_ms": 1.2, "outcome": outcome,
    }


class TestAccessLogTailTolerance:
    """load_access_log on logs a live or crashed writer left behind:
    a partial final line must be tolerable (strict=False) without
    hiding real mid-file corruption."""

    def _write(self, tmp_path, *lines):
        path = tmp_path / "access.ndjson"
        path.write_text("".join(lines))
        return path

    def test_clean_log_has_no_tail(self, tmp_path):
        from repro.io import load_access_log

        path = self._write(
            tmp_path,
            json.dumps(access_record()) + "\n",
            json.dumps(access_record(op="healthz")) + "\n",
        )
        records, tail = load_access_log(path, strict=False)
        assert [r["op"] for r in records] == ["synth", "healthz"]
        assert tail is None

    def test_truncated_final_line_strict_raises(self, tmp_path):
        from repro.io import load_access_log

        full = json.dumps(access_record()) + "\n"
        path = self._write(tmp_path, full, full[: len(full) // 2])
        with pytest.raises(SpecificationError, match=":2:"):
            load_access_log(path)

    def test_truncated_final_line_tolerated_and_reported(self, tmp_path):
        from repro.io import load_access_log

        full = json.dumps(access_record()) + "\n"
        partial = full[: len(full) // 2]
        path = self._write(tmp_path, full, full, partial)
        records, tail = load_access_log(path, strict=False)
        assert len(records) == 2
        assert tail["lineno"] == 3
        assert tail["text"] == partial
        assert "JSON" in tail["reason"]

    def test_malformed_middle_line_raises_in_both_modes(self, tmp_path):
        from repro.io import load_access_log

        full = json.dumps(access_record()) + "\n"
        path = self._write(tmp_path, full, "garbage\n", full)
        with pytest.raises(SpecificationError, match=":2:"):
            load_access_log(path)
        with pytest.raises(SpecificationError, match=":2:"):
            load_access_log(path, strict=False)

    def test_final_record_missing_fields_reported(self, tmp_path):
        from repro.io import load_access_log

        full = json.dumps(access_record()) + "\n"
        path = self._write(tmp_path, full, '{"op": "synth"}\n')
        records, tail = load_access_log(path, strict=False)
        assert len(records) == 1
        assert tail["lineno"] == 2
        assert "missing" in tail["reason"]

    def test_trailing_blank_lines_are_not_a_tail(self, tmp_path):
        from repro.io import load_access_log

        path = self._write(
            tmp_path, json.dumps(access_record()) + "\n", "\n\n"
        )
        records, tail = load_access_log(path, strict=False)
        assert len(records) == 1 and tail is None

    def test_truncated_tail_in_rotated_file_tolerated(self, tmp_path):
        """A crash *during rotation* can truncate the final line of a
        non-final rotated file; strict=False must survive it and name
        the file in the tail info instead of failing the whole replay."""
        from repro.io import load_access_log

        full = json.dumps(access_record()) + "\n"
        partial = full[: len(full) // 2]
        base = tmp_path / "access.ndjson"
        (tmp_path / "access.ndjson.1").write_text(full + full + partial)
        base.write_text(full)
        # Still corruption under strict=True ...
        with pytest.raises(SpecificationError, match=":3:"):
            load_access_log(base, rotated=True)
        # ... but lenient mode keeps every whole record from every file.
        records, tail = load_access_log(base, strict=False, rotated=True)
        assert len(records) == 3
        assert tail["path"].endswith("access.ndjson.1")
        assert tail["lineno"] == 3
        assert tail["text"] == partial
        assert len(tail["truncations"]) == 1

    def test_truncations_in_several_files_all_surfaced(self, tmp_path):
        from repro.io import load_access_log

        full = json.dumps(access_record()) + "\n"
        partial = full[: len(full) // 2]
        base = tmp_path / "access.ndjson"
        (tmp_path / "access.ndjson.1").write_text(full + partial)
        base.write_text(full + partial)
        records, tail = load_access_log(base, strict=False, rotated=True)
        assert len(records) == 2
        # tail describes the most recent truncation (the active file)
        assert tail["path"].endswith("access.ndjson")
        assert [t["path"].endswith(".1") for t in tail["truncations"]] \
            == [True, False]

    def test_mid_file_corruption_in_rotated_file_still_raises(
        self, tmp_path
    ):
        from repro.io import load_access_log

        full = json.dumps(access_record()) + "\n"
        base = tmp_path / "access.ndjson"
        (tmp_path / "access.ndjson.1").write_text(full + "garbage\n" + full)
        base.write_text(full)
        with pytest.raises(SpecificationError, match=":2:"):
            load_access_log(base, strict=False, rotated=True)

    def test_log_is_streamed_not_slurped(self, tmp_path, monkeypatch):
        """The parser must read line by line, never the whole file."""
        from pathlib import Path

        from repro.io import load_access_log

        path = self._write(
            tmp_path, json.dumps(access_record()) + "\n"
        )

        def boom(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("access log slurped via read_text")

        monkeypatch.setattr(Path, "read_text", boom)
        assert len(load_access_log(path)) == 1
