"""Unit tests for measurement sampling (repro.sim.measure)."""

import random
from fractions import Fraction

from repro.core.circuit import Circuit
from repro.mvl.patterns import Pattern
from repro.mvl.values import Qv
from repro.sim.measure import (
    empirical_distribution,
    exact_output_distribution,
    sample_circuit,
    sample_pattern,
    total_variation_distance,
)


class TestSamplePattern:
    def test_binary_pattern_deterministic(self):
        rng = random.Random(0)
        for _ in range(10):
            assert sample_pattern(Pattern([1, 0, 1]), rng) == (1, 0, 1)

    def test_mixed_wires_sampled(self):
        rng = random.Random(0)
        outcomes = {
            sample_pattern(Pattern([1, Qv.V0, 0]), rng) for _ in range(200)
        }
        assert outcomes == {(1, 0, 0), (1, 1, 0)}

    def test_seeded_reproducibility(self):
        a = [sample_pattern(Pattern([Qv.V0, Qv.V1]), random.Random(9))
             for _ in range(1)]
        b = [sample_pattern(Pattern([Qv.V0, Qv.V1]), random.Random(9))
             for _ in range(1)]
        assert a == b


class TestSampleCircuit:
    def test_shots_count(self):
        circuit = Circuit.from_names("V_BA", 3)
        samples = sample_circuit(circuit, (1, 0, 0), random.Random(1), shots=25)
        assert len(samples) == 25

    def test_deterministic_circuit_constant_samples(self):
        circuit = Circuit.from_names("F_BA", 3)
        samples = sample_circuit(circuit, (1, 0, 1), random.Random(2), shots=5)
        assert set(samples) == {(1, 1, 1)}


class TestDistributions:
    def test_empirical_distribution_sums_to_one(self):
        samples = [(0,), (1,), (1,), (1,)]
        dist = empirical_distribution(samples)
        assert dist == {(0,): 0.25, (1,): 0.75}

    def test_exact_output_distribution(self):
        circuit = Circuit.from_names("V_BA V_CA", 3)
        dist = exact_output_distribution(circuit, (1, 0, 0))
        assert len(dist) == 4
        assert all(p == Fraction(1, 4) for p in dist.values())

    def test_total_variation_identical(self):
        exact = {(0,): Fraction(1, 2), (1,): Fraction(1, 2)}
        assert total_variation_distance(exact, {(0,): 0.5, (1,): 0.5}) == 0

    def test_total_variation_disjoint(self):
        exact = {(0,): Fraction(1)}
        assert total_variation_distance(exact, {(1,): 1.0}) == 1.0

    def test_sampling_converges_to_exact(self):
        # Statistical check with a fixed seed: TV distance for 8000
        # samples over 4 outcomes stays well under 0.05.
        circuit = Circuit.from_names("V_BA V_CA", 3)
        samples = sample_circuit(circuit, (1, 0, 0), random.Random(77), shots=8000)
        tv = total_variation_distance(
            exact_output_distribution(circuit, (1, 0, 0)),
            empirical_distribution(samples),
        )
        assert tv < 0.05
