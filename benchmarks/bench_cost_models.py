"""A1 (ablation) -- non-unit cost models: the "easily modified" claim.

Paper, Section 2: "All our methods can be however easily modified to
take into account the precise NMR costs."  We re-run MCE under three
integer cost models and observe how both the minimal costs and the
*structure* of the optimal circuits change:

* unit (the paper's model): every 2-qubit gate costs 1;
* cnot2: CNOT costs 2 (V/V+ cost 1) -- the search replaces Feynman
  gates with V.V pairs where profitable;
* nmr-ish: V/V+ cost 2, CNOT costs 3 -- a crude stand-in for the
  relative NMR pulse costs of reference [4].
"""

from repro.core.cost import CostModel
from repro.core.mce import express
from repro.core.search import CascadeSearch
from repro.gates import named
from repro.gates.kinds import GateKind
from repro.render.tables import format_table

MODELS = {
    "unit": CostModel(),
    "cnot2": CostModel(cnot_cost=2),
    "nmr-ish": CostModel(v_cost=2, vdag_cost=2, cnot_cost=3),
}

#: (toffoli, peres) minimal costs measured under each model.
EXPECTED = {
    "unit": (5, 4),
    "cnot2": (7, 5),
    "nmr-ish": (12, 9),
}


def test_minimal_costs_across_models(benchmark, library3):
    def run_all():
        out = {}
        for name, model in MODELS.items():
            search = CascadeSearch(library3, model, track_parents=True)
            toffoli = express(
                named.TOFFOLI, library3, cost_bound=14,
                cost_model=model, search=search,
            )
            peres = express(
                named.PERES, library3, cost_bound=14,
                cost_model=model, search=search,
            )
            out[name] = (toffoli, peres)
        return out

    results = benchmark.pedantic(run_all, rounds=3, iterations=1)
    rows = []
    for name, (toffoli, peres) in results.items():
        assert (toffoli.cost, peres.cost) == EXPECTED[name], name
        rows.append([name, toffoli.cost, peres.cost, str(toffoli.circuit)])
    print("\n" + format_table(
        ["model", "toffoli", "peres", "optimal toffoli cascade"], rows
    ))


def test_expensive_cnot_changes_circuit_structure(benchmark, library3):
    """Under cnot2, optimal Toffoli trades Feynman gates for V pairs."""
    model = MODELS["cnot2"]

    def synthesize():
        search = CascadeSearch(library3, model, track_parents=True)
        return express(
            named.TOFFOLI, library3, cost_bound=10,
            cost_model=model, search=search,
        )

    result = benchmark.pedantic(synthesize, rounds=3, iterations=1)
    kinds = [g.kind for g in result.circuit]
    assert GateKind.CNOT not in kinds  # all XORs emulated by V.V pairs
    assert result.cost == 7
    assert result.circuit.binary_permutation() == named.TOFFOLI


def test_optimality_invariant_across_models(benchmark, library3):
    """Unit-optimal circuits re-costed are never cheaper than the
    model-optimal circuits found by the weighted search."""
    unit_search = CascadeSearch(library3, track_parents=True)
    unit_toffoli = express(named.TOFFOLI, library3, search=unit_search)

    def check():
        verdicts = []
        for name, model in MODELS.items():
            if name == "unit":
                continue
            search = CascadeSearch(library3, model, track_parents=True)
            best = express(
                named.TOFFOLI, library3, cost_bound=14,
                cost_model=model, search=search,
            )
            recosted = unit_toffoli.circuit.cost(model)
            verdicts.append(best.cost <= recosted)
        return verdicts

    verdicts = benchmark.pedantic(check, rounds=3, iterations=1)
    assert all(verdicts)
