"""Unit tests for the precompute resource planner (repro.core.plan)."""

import pytest

from repro.core.dedup import MAX_SHARD_BITS
from repro.core.plan import (
    ResourcePlan,
    available_memory_bytes,
    plan_resources,
    project_rows,
)


class TestProjection:
    def test_paper_closure_sizes_within_table(self):
        # With no store, the paper's exact |A[k]| values are returned.
        assert project_rows(0) == 1
        assert project_rows(5) == 32323
        assert project_rows(7) == 689402

    def test_extrapolation_past_known_levels(self):
        # Levels 8+ grow at the last observed ratio, so the projection
        # is strictly larger than the known bound-7 closure.
        assert project_rows(8) > project_rows(7)
        assert project_rows(9) > project_rows(8)

    def test_store_level_sizes_seed_projection(self):
        # A bound-2 store's exact sizes, extrapolated at ratio 9.
        sizes = (1, 18, 162)
        assert project_rows(2, sizes) == 181
        assert project_rows(3, sizes) == 181 + 1458

    def test_flat_levels_never_shrink(self):
        assert project_rows(4, (10, 5)) >= 15 + 2 * 5


class TestPlanResources:
    def test_leaves_one_core_for_the_coordinator(self):
        assert plan_resources(5, cpus=8, memory_bytes=1 << 33).jobs == 7
        assert plan_resources(5, cpus=2, memory_bytes=1 << 33).jobs == 2
        assert plan_resources(5, cpus=1, memory_bytes=1 << 33).jobs == 1

    def test_explicit_jobs_override(self):
        assert plan_resources(5, cpus=8, jobs=3,
                              memory_bytes=1 << 33).jobs == 3

    def test_enough_shards_for_the_jobs(self):
        plan = plan_resources(7, cpus=8, memory_bytes=1 << 33)
        assert (1 << plan.shard_bits) >= plan.jobs

    def test_shard_bits_clamped_to_engine_maximum(self):
        plan = plan_resources(12, cpus=64, memory_bytes=1 << 38)
        assert plan.shard_bits <= MAX_SHARD_BITS

    def test_budget_covers_table_when_ram_allows(self):
        plan = plan_resources(7, cpus=4, memory_bytes=8 << 30)
        assert plan.dedup_budget_bytes == plan.table_bytes
        assert not plan.spills

    def test_tight_ram_halves_budget_and_spills(self):
        plan = plan_resources(7, cpus=4, memory_bytes=32 << 20)
        assert plan.dedup_budget_bytes == (32 << 20) // 2
        assert plan.spills
        assert any("spill" in note for note in plan.notes)

    def test_unknown_ram_budgets_full_table(self):
        plan = plan_resources(5, cpus=4, memory_bytes=None)
        # only possible when detection fails; simulate by calling the
        # sizing path directly with an explicit None
        assert isinstance(plan, ResourcePlan)

    def test_command_round_trips_through_parse_budget(self):
        from repro.core.dedup import parse_budget

        plan = plan_resources(7, cpus=8, memory_bytes=8 << 30)
        assert parse_budget(plan.dedup_budget_text) == (
            plan.dedup_budget_bytes
        )
        assert f"--jobs {plan.jobs}" in plan.command()
        assert f"--shard-bits {plan.shard_bits}" in plan.command()

    def test_as_dict_is_json_ready(self):
        import json

        plan = plan_resources(7, cpus=8, memory_bytes=8 << 30)
        payload = json.loads(json.dumps(plan.as_dict()))
        assert payload["cost_bound"] == 7
        assert payload["projected_rows"] == 689402

    def test_store_header_seeds_plan(self, library3, tmp_path):
        from repro.core.search import CascadeSearch
        from repro.core.store import read_header, save_search

        search = CascadeSearch(library3, track_parents=True)
        search.extend_to(3)
        path = tmp_path / "seed.rpro"
        save_search(search, path)
        plan = plan_resources(
            5, header=read_header(path), cpus=4, memory_bytes=8 << 30
        )
        assert plan.projected_rows > search.total_seen()
        assert any("bound-3 store" in note for note in plan.notes)

    def test_recorded_shard_skew_contributes(self, library3, tmp_path):
        from repro.core.search import CascadeSearch
        from repro.core.store import read_header, save_search

        search = CascadeSearch(
            library3, kernel="parallel", track_parents=True
        )
        search.extend_to(3)
        path = tmp_path / "sharded.rpro"
        save_search(search, path)
        search.close()
        header = read_header(path)
        assert header.shards
        plan = plan_resources(
            5, header=header, cpus=4, memory_bytes=8 << 30
        )
        assert any("skew" in note for note in plan.notes)


class TestAvailableMemory:
    def test_detection_returns_positive_or_none(self):
        detected = available_memory_bytes()
        assert detected is None or detected > 0
