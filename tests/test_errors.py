"""Unit tests for the exception hierarchy (repro.errors)."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "InvalidValueError",
            "InvalidGateError",
            "InvalidCircuitError",
            "InvalidPermutationError",
            "SynthesisError",
            "CostBoundExceededError",
            "SpecificationError",
            "SimulationError",
            "NonBinaryControlError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_value_errors_are_value_errors(self):
        # Callers using stdlib idioms still catch them.
        for name in (
            "InvalidValueError",
            "InvalidGateError",
            "InvalidCircuitError",
            "InvalidPermutationError",
            "SpecificationError",
        ):
            assert issubclass(getattr(errors, name), ValueError), name

    def test_cost_bound_is_synthesis_error(self):
        assert issubclass(errors.CostBoundExceededError, errors.SynthesisError)

    def test_non_binary_control_is_simulation_error(self):
        assert issubclass(errors.NonBinaryControlError, errors.SimulationError)


class TestCostBoundError:
    def test_message_and_fields(self):
        exc = errors.CostBoundExceededError("Toffoli", 4)
        assert exc.cost_bound == 4
        assert "Toffoli" in str(exc)
        assert "4" in str(exc)

    def test_single_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.CostBoundExceededError("x", 1)
