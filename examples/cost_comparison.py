"""The paper's motivating claim, measured.

Section 1: "finding the smallest number of gates to synthesize a
reversible circuit does not necessarily result in a quantum
implementation with the lowest cost."  This example puts three
synthesizers side by side on classic targets:

* optimal gate-count NCT (NOT/CNOT/Toffoli) -- exhaustive BFS baseline,
* the MMD transformation heuristic over the same library,
* direct minimum-quantum-cost synthesis from V/V+/CNOT (this paper).

A Toffoli is charged 5 elementary gates (its own minimal realization,
Figure 9), a CNOT 1, NOT gates are free.

Run:  python examples/cost_comparison.py
"""

from repro import GateLibrary, named
from repro.baselines.compare import compare_targets
from repro.baselines.nct import NCTSynthesizer
from repro.core.search import CascadeSearch
from repro.render.tables import comparison_table_text


def main() -> None:
    library = GateLibrary(3)
    search = CascadeSearch(library, track_parents=True)
    synthesizer = NCTSynthesizer()

    targets = {
        name: named.TARGETS[name]
        for name in (
            "toffoli", "fredkin", "peres", "g2", "g3", "g4",
            "swap_bc", "cnot_ba",
        )
    }
    rows = compare_targets(targets, library, synthesizer, search)
    print(comparison_table_text(rows))

    winners = [r.name for r in rows if r.advantage > 0]
    print(
        f"\nDirect synthesis is strictly cheaper on: {', '.join(winners)}"
    )
    print(
        "The Peres-family gates save 2-3 elementary gates each -- the "
        "cheapest universal gates have no good NCT factorization."
    )

    print("\nOptimal NCT gate-count histogram over all 40320 functions")
    print("(reproduces Shende et al., ICCAD 2002):")
    for count, functions in synthesizer.gate_count_distribution().items():
        print(f"  {count} gates: {functions:6d} functions")


if __name__ == "__main__":
    main()
