"""Numpy statevector simulation on the full Hilbert space.

The fast numeric path: complex128 statevectors of dimension 2**n with
gates applied by tensor reshaping (no 2**n x 2**n matvec per gate unless
the full unitary is explicitly requested).  Cross-validated against the
exact dyadic simulator by the test-suite; all paper-scale states are
exactly representable in binary floating point, so agreement is exact,
not within-tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidValueError
from repro.core.circuit import Circuit
from repro.gates.gate import Gate
from repro.gates.kinds import GateKind
from repro.mvl.patterns import Pattern
from repro.mvl.values import Qv

_I2 = np.eye(2, dtype=np.complex128)
_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
_V = np.array(
    [[0.5 + 0.5j, 0.5 - 0.5j], [0.5 - 0.5j, 0.5 + 0.5j]], dtype=np.complex128
)
_VDAG = _V.conj().T

_VALUE_VECTORS = {
    Qv.ZERO: np.array([1, 0], dtype=np.complex128),
    Qv.ONE: np.array([0, 1], dtype=np.complex128),
    Qv.V0: _V @ np.array([1, 0], dtype=np.complex128),
    Qv.V1: _V @ np.array([0, 1], dtype=np.complex128),
}


def value_statevector(value: Qv) -> np.ndarray:
    """Single-qubit statevector of a quaternary value."""
    return _VALUE_VECTORS[Qv(value)].copy()


def pattern_statevector(pattern: Pattern) -> np.ndarray:
    """Product statevector of a pattern (wire 0 most significant)."""
    state = _VALUE_VECTORS[pattern[0]]
    for value in pattern[1:]:
        state = np.kron(state, _VALUE_VECTORS[value])
    return state.copy()


def _single_qubit_operator(gate: Gate) -> np.ndarray:
    if gate.kind is GateKind.V:
        return _V
    if gate.kind is GateKind.VDAG:
        return _VDAG
    return _X


def gate_unitary_numpy(gate: Gate) -> np.ndarray:
    """Dense 2**n x 2**n unitary of a placed gate."""
    n = gate.n_qubits
    dim = 2**n
    if gate.kind is GateKind.NOT:
        op = _X
        matrix = np.array([[1]], dtype=np.complex128)
        for w in range(n):
            matrix = np.kron(matrix, op if w == gate.target else _I2)
        return matrix
    # controlled operator (X for CNOT, V / V+ otherwise)
    op = _single_qubit_operator(gate)
    matrix = np.zeros((dim, dim), dtype=np.complex128)
    for basis in range(dim):
        control_bit = (basis >> (n - 1 - gate.control)) & 1
        if not control_bit:
            matrix[basis, basis] = 1.0
            continue
        target_bit = (basis >> (n - 1 - gate.target)) & 1
        flipped = basis ^ (1 << (n - 1 - gate.target))
        column = np.zeros(dim, dtype=np.complex128)
        column[basis] = op[target_bit, target_bit]
        column[flipped] = op[1 - target_bit, target_bit]
        matrix[:, basis] = column
    return matrix


def circuit_unitary_numpy(circuit: Circuit) -> np.ndarray:
    """Dense unitary of a cascade (later gates multiply on the left)."""
    dim = 2**circuit.n_qubits
    result = np.eye(dim, dtype=np.complex128)
    for gate in circuit:
        result = gate_unitary_numpy(gate) @ result
    return result


class StatevectorSimulator:
    """Statevector simulation via per-gate tensor contraction.

    Args:
        n_qubits: register width all simulated circuits must match.
    """

    def __init__(self, n_qubits: int):
        if n_qubits < 1:
            raise InvalidValueError("need at least one qubit")
        self._n_qubits = n_qubits
        self._dim = 2**n_qubits

    @property
    def n_qubits(self) -> int:
        return self._n_qubits

    # -- state preparation ---------------------------------------------------

    def initial_state(self, source: Pattern | int | np.ndarray) -> np.ndarray:
        """Build a statevector from a pattern, basis index or raw vector."""
        if isinstance(source, Pattern):
            if source.n_qubits != self._n_qubits:
                raise InvalidValueError("pattern width mismatch")
            return pattern_statevector(source)
        if isinstance(source, (int, np.integer)):
            if not 0 <= source < self._dim:
                raise InvalidValueError(f"basis index {source} out of range")
            state = np.zeros(self._dim, dtype=np.complex128)
            state[source] = 1.0
            return state
        state = np.asarray(source, dtype=np.complex128)
        if state.shape != (self._dim,):
            raise InvalidValueError(f"state must have shape ({self._dim},)")
        return state.copy()

    # -- evolution ---------------------------------------------------------------

    def _apply_single(self, state: np.ndarray, op: np.ndarray, wire: int) -> np.ndarray:
        tensor = state.reshape([2] * self._n_qubits)
        tensor = np.tensordot(op, tensor, axes=([1], [wire]))
        tensor = np.moveaxis(tensor, 0, wire)
        return tensor.reshape(self._dim)

    def _apply_controlled(
        self, state: np.ndarray, op: np.ndarray, target: int, control: int
    ) -> np.ndarray:
        tensor = state.reshape([2] * self._n_qubits)
        # Slice out the control=1 subspace and apply the operator there.
        index = [slice(None)] * self._n_qubits
        index[control] = 1
        sub = tensor[tuple(index)]
        sub_wire = target if target < control else target - 1
        sub = np.tensordot(op, sub, axes=([1], [sub_wire]))
        sub = np.moveaxis(sub, 0, sub_wire)
        out = tensor.copy()
        out[tuple(index)] = sub
        return out.reshape(self._dim)

    def apply_gate(self, state: np.ndarray, gate: Gate) -> np.ndarray:
        """Apply one gate to a statevector (returns a new vector)."""
        if gate.n_qubits != self._n_qubits:
            raise InvalidValueError("gate width mismatch")
        if gate.kind is GateKind.NOT:
            return self._apply_single(state, _X, gate.target)
        op = _single_qubit_operator(gate)
        return self._apply_controlled(state, op, gate.target, gate.control)

    def run(self, circuit: Circuit, initial: Pattern | int | np.ndarray) -> np.ndarray:
        """Evolve an initial state through a cascade."""
        if circuit.n_qubits != self._n_qubits:
            raise InvalidValueError("circuit width mismatch")
        state = self.initial_state(initial)
        for gate in circuit:
            state = self.apply_gate(state, gate)
        return state

    # -- measurement -----------------------------------------------------------------

    def probabilities(self, state: np.ndarray) -> np.ndarray:
        """Born probabilities over the computational basis."""
        return np.abs(state) ** 2

    def basis_distribution(self, state: np.ndarray) -> dict[int, float]:
        """Nonzero basis outcomes -> probability."""
        probs = self.probabilities(state)
        return {int(i): float(p) for i, p in enumerate(probs) if p > 1e-15}

    # -- entanglement structure ----------------------------------------------------

    def is_product_state(self, state: np.ndarray, atol: float = 1e-12) -> bool:
        """True when the state factorizes into single-qubit states.

        The paper's binary-control discipline keeps the register
        unentangled throughout a reasonable cascade; this check (every
        single-wire bipartition has Schmidt rank 1) lets the tests prove
        that claim on the unitary side -- and detect when a cascade that
        *violates* the discipline creates entanglement.
        """
        tensor = np.asarray(state, dtype=np.complex128).reshape(
            [2] * self._n_qubits
        )
        for wire in range(self._n_qubits):
            matrix = np.moveaxis(tensor, wire, 0).reshape(2, -1)
            singular_values = np.linalg.svd(matrix, compute_uv=False)
            if singular_values[1] > atol:
                return False
        return True
