"""Resource planning for precompute runs (``repro plan``).

Sizing a parallel expansion today takes operator guesswork: how many
``--jobs``, how many ``--shard-bits``, how big a ``--dedup-budget``
before the sharded table spills?  The answers are mechanical -- they
follow from the CPU count, the available RAM and the projected closure
size -- so this module computes them.

The sizing rules (also documented in ``docs/architecture.md``):

* **rows** -- projected |A[cost_bound]|.  With a store header, the
  recorded ``level_sizes`` are extrapolated past the stored bound at
  the last observed level-growth ratio; without one, the paper's
  3-qubit closure sizes seed the projection.
* **jobs** -- ``cpu_count``, minus one core left for the coordinator
  when more than two are available.
* **shard_bits** -- the smallest bits giving at least one shard per
  job (parallel grain) *and* per-shard slabs no bigger than
  :data:`SLAB_TARGET_BYTES` (so one shard's table stays cache- and
  spill-friendly), clamped to ``MAX_SHARD_BITS``.  Slab slots mirror
  the dedup table's rule: the next power of two holding the projected
  peak shard at load factor <= 1/4.  A store that recorded its shard
  layout contributes its observed skew (peak / mean rows per shard).
* **dedup budget** -- the full table size when it fits in half the
  available RAM (no spill), else half the available RAM (the table
  spills its slabs to disk, which PR 5's persistent mode handles).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.core.dedup import MAX_SHARD_BITS

#: Upper bound on one shard's slab bytes before we add shard bits.
SLAB_TARGET_BYTES = 16 << 20

#: Bytes per dedup-table slot (one uint64 word).
_SLOT_BYTES = 8

#: The paper's 3-qubit cumulative closure sizes |A[k]| (cb = 7) -- the
#: default projection seed when no store header is available.
_DEFAULT_A_SIZES = (1, 19, 181, 1198, 6562, 32323, 151211, 689402)


def available_memory_bytes() -> int | None:
    """Best-effort available RAM: MemAvailable, else total RAM, else None."""
    try:
        with open("/proc/meminfo", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        pages = os.sysconf("SC_PHYS_PAGES")
        page = os.sysconf("SC_PAGE_SIZE")
        if pages > 0 and page > 0:
            return pages * page
    except (ValueError, OSError, AttributeError):
        pass
    return None


def project_rows(
    cost_bound: int,
    level_sizes: tuple[int, ...] = (),
    degree: int | None = None,
) -> int:
    """Projected |A[cost_bound]| from known level sizes.

    Levels past the known ones grow at the last observed ratio
    ``|B[k]| / |B[k-1]|`` (clamped to >= 1).  With fewer than two known
    levels the paper's 3-qubit table seeds the projection -- but only
    for the binary 8-label space it describes (*degree* ``None`` or 8);
    an MV store's digit space (``radix**width`` labels) gets a generic
    geometric seed instead.  For an explicit MV *degree* the projection
    is additionally capped at ``degree!``: the closure is a set of label
    permutations and cannot outgrow the symmetric group.
    """
    sizes = [int(s) for s in level_sizes if int(s) > 0]
    limit = None
    if degree is not None and degree != 8 and degree <= 20:
        limit = math.factorial(degree)
    if len(sizes) < 2:
        if degree in (None, 8):
            known = list(_DEFAULT_A_SIZES)
            if cost_bound + 1 <= len(known):
                return known[cost_bound]
            sizes = [known[0]] + [
                known[k] - known[k - 1] for k in range(1, len(known))
            ]
        else:
            # No store data and no paper table for this label space:
            # seed with the identity level and a degree-sized first
            # level, growing geometrically (a deliberate overestimate;
            # the factorial cap keeps it honest for small spaces).
            sizes = [1, max(int(degree), 2)]
    total = sum(sizes)
    ratio = max(sizes[-1] / sizes[-2], 1.0)
    last = float(sizes[-1])
    for _ in range(cost_bound + 1 - len(sizes)):
        last *= ratio
        total += int(last)
        if limit is not None and total >= limit:
            return limit
    if limit is not None:
        return min(int(total), limit)
    return int(total)


def _slab_slots(peak_rows: int) -> int:
    """Slots per shard slab at load <= 1/4 (the dedup table's rule)."""
    return 1 << max(8, (4 * max(peak_rows, 1) - 1).bit_length())


@dataclass(frozen=True)
class ResourcePlan:
    """A sized precompute run: the flags plus the numbers behind them."""

    cost_bound: int
    jobs: int
    shard_bits: int
    dedup_budget_bytes: int
    projected_rows: int
    table_bytes: int
    memory_bytes: int | None
    spills: bool
    notes: tuple[str, ...]

    @property
    def dedup_budget_text(self) -> str:
        """The budget as a CLI-ready ``--dedup-budget`` spelling."""
        budget = self.dedup_budget_bytes
        for unit, scale in (("G", 1 << 30), ("M", 1 << 20), ("K", 1 << 10)):
            if budget >= scale and budget % scale == 0:
                return f"{budget // scale}{unit}"
        return str(budget)

    def command(self, store: str = "closure.rpro") -> str:
        """A ready-to-paste ``repro precompute`` invocation."""
        return (
            f"repro precompute {store} --cost-bound {self.cost_bound} "
            f"--jobs {self.jobs} --shard-bits {self.shard_bits} "
            f"--dedup-budget {self.dedup_budget_text}"
        )

    def as_dict(self) -> dict:
        return {
            "cost_bound": self.cost_bound,
            "jobs": self.jobs,
            "shard_bits": self.shard_bits,
            "dedup_budget_bytes": self.dedup_budget_bytes,
            "dedup_budget": self.dedup_budget_text,
            "projected_rows": self.projected_rows,
            "table_bytes": self.table_bytes,
            "memory_bytes": self.memory_bytes,
            "spills": self.spills,
            "notes": list(self.notes),
            "command": self.command(),
        }


def plan_resources(
    cost_bound: int,
    header=None,
    cpus: int | None = None,
    memory_bytes: int | None = None,
    jobs: int | None = None,
) -> ResourcePlan:
    """Size ``--jobs``/``--shard-bits``/``--dedup-budget`` for a run.

    Args:
        cost_bound: the closure bound being planned.
        header: an optional :class:`~repro.core.store.StoreHeader` of an
            existing store -- its level sizes seed the row projection
            and its recorded shard layout contributes observed skew.
        cpus: override ``os.cpu_count()`` (tests).
        memory_bytes: override detected available RAM (tests, or
            operators planning for a different machine).
        jobs: pin the worker count instead of deriving it from *cpus*.
    """
    notes: list[str] = []
    level_sizes: tuple[int, ...] = ()
    degree: int | None = None
    skew = 1.0
    if header is not None:
        level_sizes = tuple(header.level_sizes)
        radix = getattr(header, "radix", 2)
        if radix != 2:
            degree = radix**header.n_qubits
            notes.append(
                f"radix-{radix} store: projecting over "
                f"{degree} digit labels"
            )
        notes.append(
            f"projection seeded by a bound-{header.expanded_to} store"
        )
        shards = getattr(header, "shards", None) or {}
        rows_per_shard = shards.get("rows_per_shard") or []
        if rows_per_shard and sum(rows_per_shard):
            mean = sum(rows_per_shard) / len(rows_per_shard)
            skew = max(1.0, max(rows_per_shard) / max(mean, 1.0))
            notes.append(
                f"shard skew x{skew:.2f} observed in the store layout"
            )
    else:
        notes.append("projection seeded by the paper's 3-qubit closure")

    rows = project_rows(cost_bound, level_sizes, degree)
    if jobs is None:
        if cpus is None:
            cpus = os.cpu_count() or 1
        jobs = cpus if cpus <= 2 else cpus - 1
    jobs = max(1, jobs)

    if memory_bytes is None:
        memory_bytes = available_memory_bytes()

    bits = 0
    while bits < MAX_SHARD_BITS:
        n_shards = 1 << bits
        if n_shards >= jobs:
            peak = int(rows / n_shards * skew) + 1
            if _slab_slots(peak) * _SLOT_BYTES <= SLAB_TARGET_BYTES:
                break
        bits += 1
    n_shards = 1 << bits
    peak = int(rows / n_shards * skew) + 1
    table_bytes = n_shards * _slab_slots(peak) * _SLOT_BYTES

    if memory_bytes is None:
        budget = table_bytes
        spills = False
        notes.append("available RAM unknown; budgeting the full table")
    elif table_bytes <= memory_bytes // 2:
        budget = table_bytes
        spills = False
        notes.append("table fits in half the available RAM; no spill")
    else:
        budget = memory_bytes // 2
        spills = True
        notes.append(
            "table exceeds half the available RAM; slabs spill to disk"
        )

    return ResourcePlan(
        cost_bound=cost_bound,
        jobs=jobs,
        shard_bits=bits,
        dedup_budget_bytes=budget,
        projected_rows=rows,
        table_bytes=table_bytes,
        memory_bytes=memory_bytes,
        spills=spills,
        notes=tuple(notes),
    )
