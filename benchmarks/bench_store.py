"""E-store -- precompute-then-serve: cold search vs warm-store latency.

Measures the point of the persistent closure store: a cold synthesis
pays for expanding the cascade closure on every call, while a
precomputed store is loaded once and each query is a remainder-index
lookup.  The acceptance bar is a >= 10x per-query speedup; in practice
the gap is 3-4 orders of magnitude.

Run standalone (prints a small report)::

    PYTHONPATH=src python benchmarks/bench_store.py

or as a pytest module (asserts the speedup)::

    PYTHONPATH=src python -m pytest benchmarks/bench_store.py -s

Markers: carries ``benchmark`` (timing-sensitive; excluded from the
default tier-1 selection, run explicitly or with ``-m benchmark``).
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path
from time import perf_counter

import pytest

from repro.errors import CostBoundExceededError
from repro.core.batch import BatchSynthesizer
from repro.core.mce import express
from repro.core.search import CascadeSearch
from repro.core.store import load_search, save_search
from repro.gates import named
from repro.gates.library import GateLibrary
from repro.perm.permutation import Permutation

COST_BOUND = 7
N_COLD = 3
N_WARM = 200


def _sample_targets(count: int, seed: int = 2005) -> list[Permutation]:
    """Named paper targets padded with random reversible functions."""
    targets = [named.TARGETS[k] for k in ("toffoli", "peres", "fredkin")]
    rnd = random.Random(seed)
    while len(targets) < count:
        images = list(range(8))
        rnd.shuffle(images)
        targets.append(Permutation.from_images(images))
    return targets[:count]


def measure(store_path: Path) -> dict[str, float]:
    """Time cold full-search queries vs load-once warm-store queries."""
    library = GateLibrary(3)

    # Precompute once (this is `repro precompute`).
    started = perf_counter()
    search = CascadeSearch(library, track_parents=True)
    search.extend_to(COST_BOUND)
    precompute_s = perf_counter() - started
    save_search(search, store_path)

    # Cold: every query re-expands its own closure from scratch.
    cold_targets = _sample_targets(N_COLD)
    started = perf_counter()
    for target in cold_targets:
        express(target, library, cost_bound=COST_BOUND)
    cold_per_query = (perf_counter() - started) / len(cold_targets)

    # Warm: load the store once, then serve index lookups.
    started = perf_counter()
    loaded = load_search(store_path, library)
    batch = BatchSynthesizer(loaded)
    load_s = perf_counter() - started
    # A realistic serve mix: every synthesizable target from a random
    # stream (cost-8+ functions exist; a server would triage them the
    # same way, via the index).
    warm_targets = []
    rnd = random.Random(7)
    while len(warm_targets) < N_WARM:
        images = list(range(8))
        rnd.shuffle(images)
        target = Permutation.from_images(images)
        try:
            batch.minimal_cost(target)
        except CostBoundExceededError:
            continue
        warm_targets.append(target)
    started = perf_counter()
    for target in warm_targets:
        batch.synthesize(target)
    warm_per_query = (perf_counter() - started) / len(warm_targets)

    return {
        "precompute_s": precompute_s,
        "store_mb": store_path.stat().st_size / 1e6,
        "load_s": load_s,
        "cold_per_query_s": cold_per_query,
        "warm_per_query_s": warm_per_query,
        "speedup": cold_per_query / warm_per_query,
    }


def report(numbers: dict[str, float]) -> str:
    return (
        f"precompute (once):   {numbers['precompute_s'] * 1e3:10.1f} ms\n"
        f"store size:          {numbers['store_mb']:10.1f} MB\n"
        f"store load (once):   {numbers['load_s'] * 1e3:10.1f} ms\n"
        f"cold query (search): {numbers['cold_per_query_s'] * 1e3:10.2f} ms\n"
        f"warm query (store):  {numbers['warm_per_query_s'] * 1e6:10.2f} us\n"
        f"per-query speedup:   {numbers['speedup']:10.0f} x"
    )


@pytest.mark.benchmark
def test_warm_store_is_10x_faster_than_cold_search(tmp_path):
    numbers = measure(tmp_path / "closure.rpro")
    print("\n" + report(numbers))
    assert numbers["speedup"] >= 10.0, (
        f"warm-store query only {numbers['speedup']:.1f}x faster than cold "
        "full search; the store is not paying for itself"
    )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        print(report(measure(Path(tmp) / "closure.rpro")))
