"""The Figure 3 execution model: circuit + measurement + state feedback.

A :class:`QuantumStateMachine` drives an n-qubit combinational quantum
circuit each clock step: input wires are loaded with external bits, state
wires with the (measured) bits fed back from the previous step.  All
wires are then measured; the designated state wires become the next
state, the designated output wires are emitted.

Because the register stays a product state under the paper's
binary-control discipline, the per-step joint distribution of
(output, next state) given (input, state) is an exact product of per-wire
laws -- :meth:`QuantumStateMachine.joint_distribution` computes it with
rational arithmetic, and :class:`repro.automata.markov.MarkovChain` /
:class:`repro.automata.hmm.QuantumHMM` build on it.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import SpecificationError
from repro.core.circuit import Circuit
from repro.mvl.patterns import (
    Pattern,
    pattern_from_bits,
    pattern_measurement_distribution,
)
from repro.sim.measure import sample_pattern

Bits = tuple[int, ...]


@dataclass(frozen=True)
class MachineStep:
    """One clock step: what went in, what was measured, what comes next."""

    input_bits: Bits
    state_before: Bits
    measured: Bits
    output_bits: Bits
    state_after: Bits


class QuantumStateMachine:
    """A probabilistic state machine realized by a quantum circuit.

    Args:
        circuit: the combinational quantum cascade.
        input_wires: wires loaded from the external input each step.
        state_wires: wires loaded from the fed-back state each step;
            after measurement the same wires provide the next state.
        output_wires: wires whose measured bits are emitted (defaults to
            the input wires, which often carry computed values out --
            any subset of wires is allowed).
        initial_state: starting state bits (defaults to all zeros).

    Input and state wires must partition the register: every wire is
    driven exactly once per step.
    """

    def __init__(
        self,
        circuit: Circuit,
        input_wires: Sequence[int],
        state_wires: Sequence[int],
        output_wires: Sequence[int] | None = None,
        initial_state: Sequence[int] | None = None,
    ):
        n = circuit.n_qubits
        inputs = tuple(input_wires)
        states = tuple(state_wires)
        if sorted(inputs + states) != list(range(n)):
            raise SpecificationError(
                "input and state wires must partition the register"
            )
        outputs = tuple(output_wires) if output_wires is not None else inputs
        if any(not 0 <= w < n for w in outputs):
            raise SpecificationError("output wire out of range")
        self._circuit = circuit
        self._inputs = inputs
        self._states = states
        self._outputs = outputs
        if initial_state is None:
            initial_state = (0,) * len(states)
        self._initial_state = self._check_bits(initial_state, len(states), "state")
        self._state = self._initial_state

    @staticmethod
    def _check_bits(bits: Sequence[int], expected: int, what: str) -> Bits:
        out = tuple(int(b) for b in bits)
        if len(out) != expected or any(b not in (0, 1) for b in out):
            raise SpecificationError(f"bad {what} bits {bits!r}")
        return out

    # -- accessors ---------------------------------------------------------------

    @property
    def circuit(self) -> Circuit:
        return self._circuit

    @property
    def input_wires(self) -> Bits:
        return self._inputs

    @property
    def state_wires(self) -> Bits:
        return self._states

    @property
    def output_wires(self) -> Bits:
        return self._outputs

    @property
    def state(self) -> Bits:
        """Current (classical, measured) state bits."""
        return self._state

    @property
    def n_states(self) -> int:
        """Size of the state space: 2**len(state_wires)."""
        return 2 ** len(self._states)

    def reset(self) -> None:
        """Return to the initial state."""
        self._state = self._initial_state

    # -- single-step semantics -----------------------------------------------------

    def _load_pattern(self, input_bits: Bits, state_bits: Bits) -> Pattern:
        values = [0] * self._circuit.n_qubits
        for wire, bit in zip(self._inputs, input_bits):
            values[wire] = bit
        for wire, bit in zip(self._states, state_bits):
            values[wire] = bit
        return pattern_from_bits(values)

    def output_pattern(self, input_bits: Sequence[int], state_bits: Sequence[int]) -> Pattern:
        """The pre-measurement quaternary pattern for (input, state)."""
        inp = self._check_bits(input_bits, len(self._inputs), "input")
        st = self._check_bits(state_bits, len(self._states), "state")
        return self._circuit.strict_apply(self._load_pattern(inp, st))

    def joint_distribution(
        self, input_bits: Sequence[int], state_bits: Sequence[int]
    ) -> dict[tuple[Bits, Bits], Fraction]:
        """Exact P(output, next_state | input, state).

        Keys are (output_bits, next_state_bits) pairs.  Probabilities are
        exact rationals and sum to 1.
        """
        pattern = self.output_pattern(input_bits, state_bits)
        joint: dict[tuple[Bits, Bits], Fraction] = {}
        for measured, p in pattern_measurement_distribution(pattern).items():
            key = (
                tuple(measured[w] for w in self._outputs),
                tuple(measured[w] for w in self._states),
            )
            joint[key] = joint.get(key, Fraction(0)) + p
        return joint

    def step(self, input_bits: Sequence[int], rng: random.Random) -> MachineStep:
        """Advance one clock step (samples the measurement)."""
        inp = self._check_bits(input_bits, len(self._inputs), "input")
        before = self._state
        pattern = self.output_pattern(inp, before)
        measured = sample_pattern(pattern, rng)
        after = tuple(measured[w] for w in self._states)
        outputs = tuple(measured[w] for w in self._outputs)
        self._state = after
        return MachineStep(
            input_bits=inp,
            state_before=before,
            measured=measured,
            output_bits=outputs,
            state_after=after,
        )

    def run(
        self, input_sequence: Iterable[Sequence[int]], rng: random.Random
    ) -> list[MachineStep]:
        """Run a whole input sequence, returning the step trace."""
        return [self.step(bits, rng) for bits in input_sequence]

    def __repr__(self) -> str:
        return (
            f"QuantumStateMachine(inputs={self._inputs}, "
            f"states={self._states}, outputs={self._outputs})"
        )
