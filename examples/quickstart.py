"""Quickstart: synthesize the Toffoli gate from truly quantum gates.

This walks the paper's headline use case end to end:

1. pick a reversible target (Toffoli, as a permutation of the 8 binary
   patterns),
2. run MCE to get a minimum-quantum-cost cascade of controlled-V,
   controlled-V+ and CNOT gates,
3. draw it, trace a computation through it, and verify it at the exact
   unitary level.

Run:  python examples/quickstart.py
"""

from repro import GateLibrary, express, express_all, named
from repro.mvl.patterns import pattern_from_bits
from repro.render.diagram import circuit_diagram
from repro.sim.product_state import ProductStateSimulator
from repro.sim.verify import verify_synthesis


def main() -> None:
    library = GateLibrary(n_qubits=3)

    print("Target: Toffoli =", named.TOFFOLI.cycle_string(),
          "(swap patterns 110 and 111)\n")

    result = express(named.TOFFOLI, library)
    print(f"Minimum quantum cost: {result.cost}")
    print(f"Cascade: {result.circuit}\n")
    print(circuit_diagram(result.circuit))

    # Trace |110> through the cascade: watch wire C pass through V-states.
    simulator = ProductStateSimulator(result.circuit)
    print("\nTrace of input (1,1,0):")
    pattern = pattern_from_bits((1, 1, 0))
    for step in simulator.trace(pattern):
        print(f"  after {step.gate.name:6s}: {step.pattern}")

    # Verify at all semantic levels (quaternary, permutation, unitary).
    report = verify_synthesis(result)
    print(f"\nVerified exactly: {bool(report)} "
          f"({len(report.checks)} checks, {len(report.failures)} failures)")

    # The paper reports exactly four cost-5 implementations (Figure 9).
    implementations = express_all(named.TOFFOLI, library)
    print(f"\nAll minimal implementations found: {len(implementations)}")
    for impl in implementations:
        print(f"  {impl.circuit}")


if __name__ == "__main__":
    main()
