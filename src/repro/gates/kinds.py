"""The gate alphabet of the paper.

Four kinds of elementary quantum gates (Figure 1):

* ``V``     -- controlled square-root-of-NOT (2-qubit),
* ``VDAG``  -- controlled V-dagger (2-qubit),
* ``CNOT``  -- Feynman / quantum XOR (2-qubit),
* ``NOT``   -- inverter (1-qubit).

The paper's cost convention: every 2-qubit gate costs 1, the 1-qubit NOT
is free ("the quantum cost of 1-qubit gates is usually ignored in the
presence of 2-qubit implementations").  Alternative cost assignments are
handled by :class:`repro.core.cost.CostModel`.
"""

from __future__ import annotations

import enum


class GateKind(enum.Enum):
    """Kind of elementary quantum gate."""

    V = "V"
    VDAG = "V+"
    CNOT = "F"
    NOT = "N"

    @property
    def is_two_qubit(self) -> bool:
        """True for the controlled/Feynman gates."""
        return self is not GateKind.NOT

    @property
    def is_controlled(self) -> bool:
        """True for V and V+ (gates with a genuine control wire)."""
        return self in (GateKind.V, GateKind.VDAG)

    @property
    def default_cost(self) -> int:
        """The paper's unit-cost convention."""
        return 1 if self.is_two_qubit else 0

    @property
    def adjoint_kind(self) -> "GateKind":
        """The kind of the Hermitian adjoint gate.

        CNOT and NOT are self-adjoint; V and V+ swap.  This underlies the
        paper's observation that swapping all V and V+ gates in a valid
        implementation yields another valid implementation (Figures 8, 9).
        """
        if self is GateKind.V:
            return GateKind.VDAG
        if self is GateKind.VDAG:
            return GateKind.V
        return self

    def __str__(self) -> str:
        return self.value
