"""Disk-backed sharded dedup table for closure expansion.

The vector kernel's dedup table (:mod:`repro.core.kernel`) is a single
in-memory open-addressing array -- fine for the 3-qubit closure, a hard
wall for 4-qubit/quaternary workloads whose row counts blow past RAM.
:class:`ShardedDedupTable` removes that wall by **range-sharding the
keyspace on the hash prefix**: candidate row hash ``h`` belongs to shard
``h >> (64 - shard_bits)``, and every shard owns an independent
open-addressing *slab* of ``2**slab_bits`` slots.  A key only ever
probes inside its own shard's slab (slot ``h mod 2**slab_bits`` within
the slab, double-hash step from unrelated hash bits), which is what
makes the table partitionable:

* **In RAM** the slabs are stored as consecutive regions of one backing
  array, so a whole candidate batch probes in a handful of vectorized
  passes -- the per-slot layout, probe sequence and claim protocol are
  exactly the kernel's (see the normative "Dedup-table claim protocol"
  section in :mod:`repro.core.kernel`).
* **Past the memory budget** (or always, in ``persistent`` checkpoint
  mode) each shard's slab moves into its own ``np.memmap`` file under
  the spill directory and batches are processed shard by shard -- the
  OS pages one slab at a time instead of thrashing one giant table.

Sharding changes *where* a key lives, never *what* the table answers:

* **Slot words** pack the hash high half (bits 63..32) with an int32
  encoding (``0`` empty, ``row + 1`` committed, ``-(candidate_id + 1)``
  in-flight claim).
* **Determinism.**  Claim races resolve to the lowest candidate id (the
  sequential tie-break key) and accepted candidates commit consecutive
  global rows in candidate order, so first-discovery order is
  byte-identical to the single-table kernel for every shard count,
  budget and spill state.  ``tests/test_parallel.py`` pins this, forced
  hash collisions included.
* **Exactness.**  Optimistic hash matches are verified against full
  packed rows; genuine 64-bit collisions re-insert through an exact
  scalar probe.
* **Crash recovery.**  Committed encodings reference checkpointed rows
  only; claims never survive a batch.  :meth:`sweep_uncommitted` erases
  every slot holding a claim or a row past the last checkpoint -- open
  addressing only ever fills empty slots, so clearing later insertions
  restores exactly the checkpointed table state (earlier probe chains
  are unaffected).

`repro store shards` reports the per-shard occupancy this module
tracks, so operators can size ``--dedup-budget``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.errors import InvalidValueError

_ONE = np.uint64(1)
_LOW32 = np.uint64(0xFFFFFFFF)
_WORD = 8  # bytes per slab slot

#: Smallest slab: 2**_MIN_SLAB_BITS slots per shard.
_MIN_SLAB_BITS = 8
#: Highest supported shard count (2**MAX_SHARD_BITS shards).
MAX_SHARD_BITS = 12


def shard_of(hashes: np.ndarray, shard_bits: int) -> np.ndarray:
    """Range shard (hash-prefix) of each 64-bit row hash."""
    if shard_bits == 0:
        return np.zeros(hashes.shape[0], dtype=np.uint16)
    return (hashes >> np.uint64(64 - shard_bits)).astype(np.uint16)


def _pack_word(hashes: np.ndarray, enc: np.ndarray) -> np.ndarray:
    """Combine hash high halves with int32 encodings into slot words."""
    return (hashes & ~_LOW32) | (enc.astype(np.int64).view(np.uint64) & _LOW32)


class ShardedDedupTable:
    """Hash-prefix-sharded, optionally disk-backed exact dedup table.

    Args:
        shard_bits: the keyspace is split into ``2**shard_bits`` ranges
            by hash prefix (0 = a single shard, degenerating to the
            kernel's layout).
        memory_budget: soft cap, in bytes, on table memory held in RAM.
            When the next capacity step would cross it, the table
            switches to per-shard ``np.memmap`` slabs under
            *spill_dir*.  ``None`` never spills.
        spill_dir: directory for spilled/persistent slabs.  Created on
            demand; when ``None`` a temporary directory is created at
            first spill and removed on :meth:`close`.
        persistent: keep every slab as a memmap file under *spill_dir*
            from the start (the checkpoint/resume mode of the parallel
            engine) and, when slab files of the expected size already
            exist, adopt their contents instead of zeroing them --
            callers then :meth:`sweep_uncommitted` back to their last
            checkpoint.
    """

    def __init__(
        self,
        shard_bits: int = 6,
        memory_budget: int | None = None,
        spill_dir: str | Path | None = None,
        persistent: bool = False,
    ):
        if not 0 <= shard_bits <= MAX_SHARD_BITS:
            raise InvalidValueError(
                f"shard_bits must be in 0..{MAX_SHARD_BITS}, got {shard_bits}"
            )
        if memory_budget is not None and memory_budget < 0:
            raise InvalidValueError("memory budget must be non-negative")
        self.shard_bits = shard_bits
        self.n_shards = 1 << shard_bits
        self.memory_budget = memory_budget
        self.persistent = persistent
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._owns_spill_dir = False
        self._slab_bits = _MIN_SLAB_BITS
        self._rows = np.zeros(self.n_shards, dtype=np.int64)
        self.adopted = False
        if persistent:
            self._backing = None
            # A prior run's slab files fix the geometry: adopt their
            # size (the resuming caller validates the contents or
            # resets them), otherwise start with fresh minimal slabs.
            probe = self._slab_path(0)
            if probe.exists():
                slots = probe.stat().st_size // _WORD
                bits = max(slots.bit_length() - 1, 0)
                if (1 << bits) == slots and bits >= _MIN_SLAB_BITS:
                    self._slab_bits = bits
                    self.adopted = True
            self._slabs: list[np.ndarray] | None = [
                self._open_slab(s, adopt=True) for s in range(self.n_shards)
            ]
        else:
            self._slabs = None
            self._backing = self._alloc_backing(self._slab_bits)

    # -- storage -----------------------------------------------------------------------

    @property
    def spilled(self) -> bool:
        """True once slabs live as per-shard memmap files."""
        return self._slabs is not None

    @property
    def slab_bits(self) -> int:
        """log2 slots per shard slab (uniform across shards)."""
        return self._slab_bits

    @property
    def ram_bytes(self) -> int:
        """Table bytes currently held in ordinary RAM."""
        return 0 if self._backing is None else self._backing.nbytes

    @property
    def spill_dir(self) -> Path | None:
        return self._spill_dir

    @property
    def n_rows(self) -> int:
        """Committed rows across all shards."""
        return int(self._rows.sum())

    def _alloc_backing(self, bits: int) -> np.ndarray:
        backing = np.empty(self.n_shards << bits, dtype=np.uint64)
        backing.fill(0)
        return backing

    def _slab_path(self, shard: int) -> Path:
        if self._spill_dir is None:
            self._spill_dir = Path(tempfile.mkdtemp(prefix="repro-dedup-"))
            self._owns_spill_dir = True
        return self._spill_dir / f"shard-{shard:04d}.slab"

    def _open_slab(self, shard: int, adopt: bool = False) -> np.memmap:
        path = self._slab_path(shard)
        path.parent.mkdir(parents=True, exist_ok=True)
        size = (1 << self._slab_bits) * _WORD
        if adopt and path.exists() and path.stat().st_size == size:
            return np.memmap(
                path, dtype=np.uint64, mode="r+", shape=(1 << self._slab_bits,)
            )
        slab = np.memmap(
            path, dtype=np.uint64, mode="w+", shape=(1 << self._slab_bits,)
        )
        slab[:] = 0
        return slab

    def _slab(self, shard: int) -> np.ndarray:
        if self._slabs is not None:
            return self._slabs[shard]
        if self._backing is None:
            raise InvalidValueError(
                "dedup table is closed; row lookups and inserts need a "
                "live table"
            )
        return self._backing[shard << self._slab_bits :][: 1 << self._slab_bits]

    def _spill(self) -> None:
        """Move the in-RAM backing into per-shard memmap slabs."""
        if self._slabs is not None:
            return
        backing = self._backing
        self._backing = None
        self._slabs = []
        for s in range(self.n_shards):
            slab = self._open_slab(s)
            slab[:] = backing[s << self._slab_bits :][: 1 << self._slab_bits]
            self._slabs.append(slab)

    # -- capacity ----------------------------------------------------------------------

    def reserve(
        self, cand_hashes: np.ndarray, all_hashes: np.ndarray, n_rows: int
    ) -> None:
        """Grow slabs so the worst case (every candidate new) keeps every
        shard's load factor under 1/4.

        ``all_hashes[:n_rows]`` are the hashes of every committed row --
        regrown slabs are refilled from them.
        """
        counts = self._rows + np.bincount(
            shard_of(cand_hashes, self.shard_bits), minlength=self.n_shards
        )
        need = int(counts.max())
        if need * 4 <= (1 << self._slab_bits):
            return
        bits = self._slab_bits
        while need * 4 > (1 << bits):
            bits += 1
        self._regrow(bits, all_hashes, n_rows)

    def _regrow(self, bits: int, all_hashes: np.ndarray, n_rows: int) -> None:
        spill_next = self.persistent or (
            self.memory_budget is not None
            and (self.n_shards << bits) * _WORD > self.memory_budget
        )
        self._slab_bits = bits
        if self._slabs is not None or spill_next:
            self._backing = None
            self._slabs = [
                self._open_slab(s) for s in range(self.n_shards)
            ]
        else:
            self._backing = self._alloc_backing(bits)
        self._rows[:] = 0
        if n_rows:
            self.insert_distinct(
                all_hashes[:n_rows],
                np.arange(1, n_rows + 1, dtype=np.int32),
                all_hashes,
                n_rows,
            )

    # -- inserts (known-distinct rows) -------------------------------------------------

    def insert_distinct(
        self,
        hashes: np.ndarray,
        encodings: np.ndarray,
        all_hashes: np.ndarray,
        n_rows_after: int,
    ) -> None:
        """Insert rows known to be pairwise-distinct and absent.

        ``encodings`` carries the ``row + 1`` slot values;
        ``all_hashes[:n_rows_after]`` must already include *hashes* (it
        backs any slab regrowth the insert triggers).
        """
        if not hashes.size:
            return
        shards = shard_of(hashes, self.shard_bits)
        counts = self._rows + np.bincount(shards, minlength=self.n_shards)
        need = int(counts.max())
        if need * 4 > (1 << self._slab_bits):
            bits = self._slab_bits
            while need * 4 > (1 << bits):
                bits += 1
            prior = n_rows_after - hashes.size
            # _regrow reinserts rows 1..n_rows_after in one pass (the
            # new rows are part of all_hashes already), so we are done.
            if (
                prior >= 0
                and np.array_equal(encodings[:1], np.int32([prior + 1]))
                and hashes.size == n_rows_after - prior
            ):
                self._regrow(bits, all_hashes, n_rows_after)
                return
            self._regrow(bits, all_hashes, prior)
        if self._backing is not None:
            self._insert_vectorized(hashes, encodings, shards)
        else:
            order = np.argsort(shards, kind="stable")
            counts = np.bincount(shards, minlength=self.n_shards)
            bounds = np.zeros(self.n_shards + 1, dtype=np.int64)
            np.cumsum(counts, out=bounds[1:])
            for s in np.flatnonzero(counts):
                sel = order[bounds[s] : bounds[s + 1]]
                self._insert_shard(
                    int(s), np.take(hashes, sel), np.take(encodings, sel)
                )
        self._rows += np.bincount(shards, minlength=self.n_shards)

    def _global_slots(self, hashes: np.ndarray, rnd: np.uint64) -> np.ndarray:
        """Backing-array slot of each hash at probe round *rnd*."""
        msk = np.uint64((1 << self._slab_bits) - 1)
        if rnd == np.uint64(0):
            local = hashes & msk
        else:
            step = (hashes >> np.uint64(42)) | _ONE
            local = (hashes + rnd * step) & msk
        if self.shard_bits == 0:
            return local.view(np.int64)
        base = (hashes >> np.uint64(64 - self.shard_bits)) << np.uint64(
            self._slab_bits
        )
        return (base | local).view(np.int64)

    def _local_slots(self, hashes: np.ndarray, rnd: np.uint64) -> np.ndarray:
        """Slab-local slot of each hash at probe round *rnd*."""
        msk = np.uint64((1 << self._slab_bits) - 1)
        if rnd == np.uint64(0):
            return (hashes & msk).view(np.int64)
        step = (hashes >> np.uint64(42)) | _ONE
        return ((hashes + rnd * step) & msk).view(np.int64)

    def _insert_batch(self, ht, slot_fn, hashes, encodings) -> None:
        """Known-distinct insert loop, shared by both backings.

        ``slot_fn(hashes, round)`` maps to slots of *ht* --
        :meth:`_global_slots` for the RAM backing array,
        :meth:`_local_slots` for one shard's slab.
        """
        words = _pack_word(hashes, encodings)
        alive = np.arange(hashes.size, dtype=np.int64)
        rnd = np.uint64(0)
        while alive.size:
            slot = slot_fn(hashes[alive], rnd)
            empty = (np.take(ht, slot, mode="clip") & _LOW32) == 0
            idx = alive[empty]
            sl = slot[empty]
            ht[sl[::-1]] = words[idx[::-1]]
            won = np.take(ht, sl, mode="clip") == words[idx]
            alive = np.concatenate([alive[~empty], idx[~won]])
            rnd += _ONE

    def _insert_vectorized(
        self, hashes: np.ndarray, encodings: np.ndarray, shards: np.ndarray
    ) -> None:
        self._insert_batch(self._backing, self._global_slots, hashes, encodings)

    def _insert_shard(
        self, shard: int, hashes: np.ndarray, encodings: np.ndarray
    ) -> None:
        self._insert_batch(self._slab(shard), self._local_slots, hashes, encodings)

    # -- batch dedup (the claim protocol) ----------------------------------------------

    def dedup_commit(
        self,
        candw: np.ndarray,
        ch: np.ndarray,
        permw: np.ndarray,
        n_rows: int,
    ) -> np.ndarray:
        """Classify a candidate batch; returns the accepted-as-new mask.

        Args:
            candw: ``(M, words)`` uint64 view of the packed candidates.
            ch: ``(M,)`` candidate hashes.
            permw: uint64 view of the committed global row store
                (occupant verification reads it).
            n_rows: committed rows before this batch; accepted
                candidates are committed as rows ``n_rows..`` in
                candidate order.

        Semantics are exactly :meth:`VectorEngine._dedup_insert`'s --
        lowest candidate id wins claim races, optimistic duplicates are
        verified against full rows, collision victims re-insert through
        an exact scalar path.
        """
        M = candw.shape[0]
        status = np.zeros(M, dtype=np.int8)  # 0 pending, 1 new, 2 dup
        slot_of = np.empty(M, dtype=np.int64)  # global (RAM) / local (spilled)
        pair_cand: list[np.ndarray] = []
        pair_occ: list[np.ndarray] = []
        if self._backing is not None:
            self._probe_batch(
                self._backing, self._global_slots, ch, None,
                status, slot_of, pair_cand, pair_occ,
            )
        else:
            cand_shard = shard_of(ch, self.shard_bits)
            order = np.argsort(cand_shard, kind="stable")
            counts = np.bincount(cand_shard, minlength=self.n_shards)
            bounds = np.zeros(self.n_shards + 1, dtype=np.int64)
            np.cumsum(counts, out=bounds[1:])
            for s in np.flatnonzero(counts):
                # Stable partition keeps per-shard ids ascending, so the
                # reversed claim scatter stays lowest-id-wins.
                ids = order[bounds[s] : bounds[s + 1]]
                self._probe_batch(
                    self._slab(int(s)), self._local_slots, ch, ids,
                    status, slot_of, pair_cand, pair_occ,
                )
        # Deferred verification of every optimistic duplicate, in one
        # vectorized full-row comparison across all shards.
        if pair_cand:
            cids = np.concatenate(pair_cand)
            occs = np.concatenate(pair_occ)
            eq = (
                self._occupant_packed(occs, candw, permw)
                == np.take(candw, cids, axis=0, mode="clip")
            ).all(axis=1)
            for cid in np.sort(cids[~eq]):
                self._scalar_insert(
                    int(cid), candw, ch, permw, status, slot_of
                )
        new_mask = status == 1
        accepted = np.flatnonzero(new_mask)
        if accepted.size:
            final = (n_rows + 1 + np.arange(accepted.size)).astype(np.int32)
            acc_h = np.take(ch, accepted)
            acc_shard = shard_of(acc_h, self.shard_bits)
            if self._backing is not None:
                self._backing[slot_of[accepted]] = _pack_word(acc_h, final)
            else:
                for s in np.unique(acc_shard):
                    sel = acc_shard == s
                    self._slab(int(s))[slot_of[accepted[sel]]] = _pack_word(
                        acc_h[sel], final[sel]
                    )
            self._rows += np.bincount(acc_shard, minlength=self.n_shards)
        return new_mask

    def _probe_batch(
        self, ht, slot_fn, ch, ids, status, slot_of, pair_cand, pair_occ
    ) -> None:
        """The claim-protocol probe rounds, shared by both backings.

        One batch of candidates probes the table *ht* through
        ``slot_fn(hashes, round)`` -- :meth:`_global_slots` for the RAM
        backing array (``ids=None``: every candidate, the round-0 fast
        path), :meth:`_local_slots` for one spilled shard's slab (with
        ``ids`` that shard's global candidate ids, ascending, so the
        reversed claim scatter stays lowest-id-wins).  Mirrors
        :meth:`VectorEngine._dedup_insert`'s normative round structure.
        """
        rnd = np.uint64(0)
        while True:
            if ids is None:
                h = ch
            else:
                if not ids.size:
                    break
                h = np.take(ch, ids)
            slot = slot_fn(h, rnd)
            word = np.take(ht, slot, mode="clip")
            enc = (word & _LOW32).astype(np.uint32).view(np.int32)
            survivors = []
            occ_i = np.flatnonzero(enc)
            if occ_i.size:
                own = occ_i if ids is None else np.take(ids, occ_i)
                hmatch = (
                    np.take(word, occ_i) >> np.uint64(32)
                ) == (np.take(h, occ_i) >> np.uint64(32))
                if hmatch.any():
                    dup_own = own[hmatch]
                    status[dup_own] = 2
                    pair_cand.append(dup_own)
                    pair_occ.append(np.take(enc, occ_i[hmatch]))
                    survivors.append(own[~hmatch])
                else:
                    survivors.append(own)
            emp_i = np.flatnonzero(enc == 0)
            if emp_i.size:
                claimants = emp_i if ids is None else np.take(ids, emp_i)
                sl = np.take(slot, emp_i)
                my_h = np.take(ch, claimants)
                my_word = _pack_word(my_h, (-1 - claimants).astype(np.int32))
                ht[sl[::-1]] = my_word[::-1]
                got = np.take(ht, sl, mode="clip")
                won = got == my_word
                winners = claimants[won]
                status[winners] = 1
                slot_of[winners] = sl[won]
                lost = ~won
                if lost.any():
                    lcl = claimants[lost]
                    gotl = got[lost]
                    same_h = (gotl >> np.uint64(32)) == (
                        my_h[lost] >> np.uint64(32)
                    )
                    if same_h.any():
                        si = np.flatnonzero(same_h)
                        status[lcl[si]] = 2
                        pair_cand.append(lcl[si])
                        pair_occ.append(
                            (gotl[si] & _LOW32)
                            .astype(np.uint32)
                            .view(np.int32)
                        )
                        keep = np.ones(lcl.size, dtype=bool)
                        keep[si] = False
                        survivors.append(lcl[keep])
                    else:
                        survivors.append(lcl)
            ids = (
                np.concatenate(survivors)
                if survivors
                else np.empty(0, dtype=np.int64)
            )
            rnd += _ONE

    @staticmethod
    def _occupant_packed(
        occupant: np.ndarray, candw: np.ndarray, permw: np.ndarray
    ) -> np.ndarray:
        """Packed rows behind occupant encodings (rows or batch claims)."""
        batch = occupant < 0
        if batch.any():
            packed = np.empty(
                (occupant.size, candw.shape[1]), dtype=np.uint64
            )
            packed[batch] = np.take(
                candw, -occupant[batch] - 1, axis=0, mode="clip"
            )
            glob = ~batch
            if glob.any():
                packed[glob] = np.take(
                    permw, occupant[glob] - 1, axis=0, mode="clip"
                )
            return packed
        return np.take(permw, occupant - 1, axis=0, mode="clip")

    def _scalar_insert(
        self, cid, candw, ch, permw, status, slot_of
    ) -> None:
        """Exact single-candidate probe for hash-collision victims."""
        h = ch[cid]
        shard = (
            int(h >> np.uint64(64 - self.shard_bits)) if self.shard_bits else 0
        )
        ht = self._slab(shard) if self._backing is None else self._backing
        base = (shard << self._slab_bits) if self._backing is not None else 0
        msk = np.uint64((1 << self._slab_bits) - 1)
        step = (h >> np.uint64(42)) | _ONE
        probe = h & msk
        high = int(h >> np.uint64(32))
        key = candw[cid]
        for _ in range(1 << self._slab_bits):
            slot = base + int(probe)
            word = int(ht[slot])
            occupant = (word & 0xFFFFFFFF) - ((word & 0x80000000) << 1)
            if occupant == 0:
                ht[slot] = int(
                    _pack_word(
                        np.array([h], dtype=np.uint64),
                        np.array([-1 - cid], dtype=np.int32),
                    )[0]
                )
                status[cid] = 1
                slot_of[cid] = slot
                return
            if (word >> 32) == high:
                if occupant > 0:
                    stored = permw[occupant - 1]
                else:
                    stored = candw[-occupant - 1]
                if bool((stored == key).all()):
                    status[cid] = 2
                    return
            probe = (probe + step) & msk
        raise InvalidValueError("dedup shard slab full during scalar insert")

    # -- lookup ------------------------------------------------------------------------

    def find(self, key: np.ndarray, h: np.uint64, permw: np.ndarray) -> int:
        """Committed global row of a packed-row key, or -1."""
        h = np.uint64(h)
        shard = (
            int(h >> np.uint64(64 - self.shard_bits)) if self.shard_bits else 0
        )
        ht = self._slab(shard)
        msk = np.uint64((1 << self._slab_bits) - 1)
        step = (h >> np.uint64(42)) | _ONE
        probe = h & msk
        high = int(h >> np.uint64(32))
        for _ in range(1 << self._slab_bits):
            slot = int(probe)
            word = int(ht[slot])
            occupant = (word & 0xFFFFFFFF) - ((word & 0x80000000) << 1)
            if occupant == 0:
                return -1
            if occupant > 0 and (word >> 32) == high:
                if bool((permw[occupant - 1] == key).all()):
                    return occupant - 1
            probe = (probe + step) & msk
        return -1

    # -- crash recovery / maintenance --------------------------------------------------

    def adopt_geometry(self, slab_bits: int) -> None:
        """Reopen persistent slabs at a checkpointed size, keeping contents.

        Only meaningful in ``persistent`` mode, before any insert; slab
        files whose size does not match are recreated empty (a
        subsequent :meth:`reinsert_shard` pass restores them).
        """
        if not self.persistent or self._slabs is None:
            raise InvalidValueError(
                "adopt_geometry is only valid on a persistent table"
            )
        self._slab_bits = int(slab_bits)
        self._slabs = [
            self._open_slab(s, adopt=True) for s in range(self.n_shards)
        ]

    def reinsert_shard(
        self, shard: int, hashes: np.ndarray, encodings: np.ndarray
    ) -> None:
        """Rebuild one shard's slab from its committed rows."""
        slab = self._slab(shard)
        slab[:] = 0
        self._rows[shard] = 0
        if hashes.size:
            self._insert_shard(shard, hashes, encodings)
            self._rows[shard] = int(hashes.size)

    def sweep_uncommitted(self, n_rows: int) -> int:
        """Erase claims and any commit past row ``n_rows - 1``.

        Returns how many slots were cleared.  Safe because slots are
        only ever filled (never moved): clearing later insertions
        leaves every earlier probe chain intact, restoring the exact
        table state at the ``n_rows`` checkpoint.
        """
        cleared = 0
        for s in range(self.n_shards):
            slab = self._slab(s)
            enc = (slab & _LOW32).astype(np.uint32).view(np.int32)
            bad = (enc < 0) | (enc > n_rows)
            n_bad = int(bad.sum())
            if n_bad:
                slab[bad] = 0
                cleared += n_bad
            self._rows[s] = int(np.count_nonzero((enc > 0) & (enc <= n_rows)))
        return cleared

    def flush(self) -> None:
        """Flush every spilled slab to its backing file."""
        if self._slabs is not None:
            for slab in self._slabs:
                slab.flush()

    def close(self) -> None:
        """Drop slab arrays; remove an owned temporary spill directory."""
        self._backing = None
        self._slabs = None
        if self._owns_spill_dir and self._spill_dir is not None:
            import shutil

            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None
            self._owns_spill_dir = False

    # -- introspection -----------------------------------------------------------------

    def layout(self) -> dict:
        """Shard layout summary (serialized into store headers)."""
        return {
            "shard_bits": self.shard_bits,
            "slab_slots": 1 << self._slab_bits,
            "rows_per_shard": [int(r) for r in self._rows],
            "spilled": self.spilled,
        }

    def stats(self) -> list[dict]:
        """Per-shard occupancy: rows, slots, load, bytes, backing."""
        slots = 1 << self._slab_bits
        return [
            {
                "shard": s,
                "rows": int(self._rows[s]),
                "slots": slots,
                "load": int(self._rows[s]) / slots,
                "bytes": slots * _WORD,
                "spilled": self.spilled,
            }
            for s in range(self.n_shards)
        ]


def parse_budget(text: str) -> int:
    """Parse a ``--dedup-budget`` value: bytes, or with a unit suffix.

    Accepted spellings, case-insensitive:

    * bare bytes: ``4096``;
    * binary suffixes ``K``/``M``/``G`` and ``KiB``/``MiB``/``GiB``
      (1024-based -- the bare letters keep their historical binary
      meaning);
    * decimal suffixes ``KB``/``MB``/``GB`` (1000-based);
    * fractional values with any suffix: ``1.5G``, ``0.5MiB``.

    Fractional byte totals round down.  Raises
    :class:`~repro.errors.InvalidValueError` on anything else, negative
    values included.
    """
    raw = text.strip()
    scale = 1
    suffixes = {
        "k": 1 << 10, "m": 1 << 20, "g": 1 << 30,
        "kib": 1 << 10, "mib": 1 << 20, "gib": 1 << 30,
        "kb": 10 ** 3, "mb": 10 ** 6, "gb": 10 ** 9,
    }
    lowered = raw.lower()
    for suffix in ("kib", "mib", "gib", "kb", "mb", "gb", "k", "m", "g"):
        if lowered.endswith(suffix):
            scale = suffixes[suffix]
            raw = raw[: -len(suffix)]
            break
    try:
        value = int(raw)
    except ValueError:
        try:
            value = float(raw)
        except ValueError:
            raise InvalidValueError(
                f"cannot parse memory budget {text!r}; use bytes or a "
                "K/M/G, KiB/MiB/GiB or KB/MB/GB suffix (e.g. 512M, "
                "1.5G, 512MB)"
            ) from None
    if value < 0:
        raise InvalidValueError("memory budget must be non-negative")
    return int(value * scale)
