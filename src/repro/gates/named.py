"""Named reversible targets as permutations of the binary patterns.

A 3-qubit reversible function is a permutation of the 8 binary patterns
(labels 1..8 in the paper, patterns 000..111 with qubit A most
significant).  This module defines the classic gates the paper
synthesizes -- Toffoli, Fredkin, Peres and the g1..g4 family of Figures
4-7 -- plus builders for arbitrary targets from Boolean output functions,
NOT layers (the group N of Theorem 2) and wire relabelings.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import SpecificationError
from repro.perm.permutation import Permutation

Bits = tuple[int, ...]


def _bits(index: int, n_qubits: int) -> Bits:
    return tuple((index >> (n_qubits - 1 - w)) & 1 for w in range(n_qubits))


def _index(bits: Sequence[int]) -> int:
    value = 0
    for b in bits:
        value = value * 2 + (b & 1)
    return value


def from_output_functions(
    n_qubits: int, functions: Sequence[Callable[[Bits], int]]
) -> Permutation:
    """Build a reversible target from per-output Boolean functions.

    Args:
        n_qubits: register width.
        functions: one function per output wire, each mapping the tuple of
            input bits to that wire's output bit.

    Raises:
        SpecificationError: if the functions are not jointly reversible.
    """
    if len(functions) != n_qubits:
        raise SpecificationError(
            f"need {n_qubits} output functions, got {len(functions)}"
        )
    images = []
    for index in range(2**n_qubits):
        bits = _bits(index, n_qubits)
        images.append(_index([f(bits) for f in functions]))
    if len(set(images)) != len(images):
        raise SpecificationError("output functions are not reversible")
    return Permutation.from_images(images)


def from_cycles(cycles: Sequence[Sequence[int]], n_qubits: int = 3) -> Permutation:
    """Paper-style 1-based cycles on the binary labels."""
    return Permutation.from_cycles(2**n_qubits, cycles, one_based=True)


def not_layer_permutation(mask: int, n_qubits: int = 3) -> Permutation:
    """The NOT-layer permutation XOR-ing *mask* into the pattern index.

    These 2**n involutions form the group N of Theorem 2 (``a * a = ()``),
    and N is a transversal of G = Stab(all-zeros) in the full symmetric
    group H on the binary patterns.
    """
    size = 2**n_qubits
    if not 0 <= mask < size:
        raise SpecificationError(f"NOT mask {mask} out of range")
    return Permutation.from_images([x ^ mask for x in range(size)])


def not_group(n_qubits: int = 3) -> list[Permutation]:
    """All 2**n NOT-layer permutations (the paper's group N)."""
    return [not_layer_permutation(m, n_qubits) for m in range(2**n_qubits)]


def wire_relabeling(wire_perm: Sequence[int], n_qubits: int = 3) -> Permutation:
    """The pattern permutation induced by relabeling wires.

    ``wire_perm[w]`` is the new position of wire w.  Used to classify the
    24 universal G[4] circuits into the paper's four 6-element families
    ("each ... has other five similar circuits with different permutations
    of the three bits").
    """
    if sorted(wire_perm) != list(range(n_qubits)):
        raise SpecificationError(f"{wire_perm!r} is not a wire permutation")
    images = []
    for index in range(2**n_qubits):
        bits = _bits(index, n_qubits)
        new_bits = [0] * n_qubits
        for w, b in enumerate(bits):
            new_bits[wire_perm[w]] = b
        images.append(_index(new_bits))
    return Permutation.from_images(images)


def cnot_target(target: int, control: int, n_qubits: int = 3) -> Permutation:
    """CNOT as a reversible target: target ^= control."""
    def output(wire: int) -> Callable[[Bits], int]:
        if wire == target:
            return lambda bits: bits[target] ^ bits[control]
        return lambda bits: bits[wire]

    return from_output_functions(n_qubits, [output(w) for w in range(n_qubits)])


def swap_target(wire_a: int, wire_b: int, n_qubits: int = 3) -> Permutation:
    """SWAP of two wires as a reversible target."""
    order = list(range(n_qubits))
    order[wire_a], order[wire_b] = order[wire_b], order[wire_a]
    return wire_relabeling(order, n_qubits)


# -- the paper's concrete 3-qubit targets -------------------------------------
#
# Labels: 1:(000) 2:(001) 3:(010) 4:(011) 5:(100) 6:(101) 7:(110) 8:(111)

#: Toffoli: P=A, Q=B, R=C^AB -- swaps 110 and 111.
TOFFOLI = from_cycles([(7, 8)])

#: Fredkin: controlled swap of B and C -- swaps 101 and 110.
FREDKIN = from_cycles([(6, 7)])

#: Peres (the paper's g1, Figure 4): P=A, Q=B^A, R=C^AB.
PERES = from_cycles([(5, 7, 6, 8)])

#: Figure 5 family member g2: P=A, Q=B^AC', R=C^A.
G2 = from_cycles([(5, 8, 7, 6)])

#: Figure 6 family member g3: P=A, Q=B^A, R=C^A'B.
G3 = from_cycles([(3, 4), (5, 7), (6, 8)])

#: Figure 7 family member g4: P=A, Q=B^A, R=C'^A'B'.
G4 = from_cycles([(3, 4), (5, 8), (6, 7)])

#: The identity target.
IDENTITY3 = Permutation.identity(8)

#: Boolean-function forms of the same targets (used to cross-check the
#: cycle forms and the paper's printed output equations).
TOFFOLI_FUNCTIONS = (
    lambda b: b[0],
    lambda b: b[1],
    lambda b: b[2] ^ (b[0] & b[1]),
)
PERES_FUNCTIONS = (
    lambda b: b[0],
    lambda b: b[1] ^ b[0],
    lambda b: b[2] ^ (b[0] & b[1]),
)
G2_FUNCTIONS = (
    lambda b: b[0],
    lambda b: b[1] ^ (b[0] & (1 - b[2])),
    lambda b: b[2] ^ b[0],
)
G3_FUNCTIONS = (
    lambda b: b[0],
    lambda b: b[1] ^ b[0],
    lambda b: b[2] ^ ((1 - b[0]) & b[1]),
)
G4_FUNCTIONS = (
    lambda b: b[0],
    lambda b: b[1] ^ b[0],
    lambda b: (1 - b[2]) ^ ((1 - b[0]) & (1 - b[1])),
)

#: Registry for the CLI and examples.
TARGETS: dict[str, Permutation] = {
    "identity": IDENTITY3,
    "toffoli": TOFFOLI,
    "fredkin": FREDKIN,
    "peres": PERES,
    "g1": PERES,
    "g2": G2,
    "g3": G3,
    "g4": G4,
    "swap_ab": swap_target(0, 1),
    "swap_ac": swap_target(0, 2),
    "swap_bc": swap_target(1, 2),
    "cnot_ba": cnot_target(1, 0),
    "cnot_cb": cnot_target(2, 1),
}
