"""E-parallel -- sharded expansion engine vs the single-threaded vector kernel.

Measures the PR-5 tentpole: ``CascadeSearch(kernel="parallel")`` -- the
relation-filtered, hash-prefix-sharded, optionally multi-process
expansion engine of :mod:`repro.core.parallel` -- against the PR-2
vector kernel on the paper's full cost-7 closure (~6.9e5 cascades,
parent tracking on).  Two parallel configurations are timed:

* ``jobs=1``: coordinator-only.  Isolates the *algorithmic* gains (the
  length-2 relation filter prunes ~75% of duplicate candidates before
  composition; the sharded dedup table commits the survivors) with zero
  parallelism.
* ``jobs=4``: the worker-pool path (pair-table composition + hashing
  fanned out over shared scratch mappings).  On a multi-core machine
  this adds near-linear compose/hash scaling on top of the jobs=1
  gains; on a single-CPU runner it can only lose to IPC overhead, so
  the recorded ``cpus`` field is the context for the headline number.

All configurations must produce byte-identical golden level counts
(asserted here; full equivalence is pinned by tests/test_parallel.py),
and the parallel closure is saved through the streaming store writer
and re-verified with ``repro store verify`` semantics.

Runs are paired and the best time per configuration is reported.
Results land in ``BENCH_parallel.json`` at the repo root.

Run standalone (prints a small report)::

    PYTHONPATH=src python benchmarks/bench_parallel.py

or as a pytest module (asserts the speedup bar for the machine size)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -s

Markers: carries ``benchmark`` (timing-sensitive; excluded from the
default tier-1 selection).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from time import perf_counter

import pytest

from repro.core.search import CascadeSearch
from repro.core.store import save_search, verify_store
from repro.gates.library import GateLibrary

COST_BOUND = 7
ROUNDS = 3
#: The pinned |B[k]| sizes (see tests/test_golden_tables.py).
GOLDEN_B = (1, 18, 162, 1017, 5364, 25761, 118888, 538191)

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _build(library: GateLibrary, kernel: str, options=None):
    started = perf_counter()
    search = CascadeSearch(
        library, track_parents=True, kernel=kernel, kernel_options=options
    )
    search.extend_to(COST_BOUND)
    elapsed = perf_counter() - started
    assert search.stats().level_sizes == GOLDEN_B, (
        f"{kernel}{options or {}} drifted from the golden closure"
    )
    return elapsed, search


def measure() -> dict:
    """Paired closure builds + a streamed store write; returns numbers."""
    library = GateLibrary(3)
    # Warm-up pre-faults allocator pools for every configuration.
    _, warm = _build(library, "parallel", {"jobs": 1})
    warm.close()
    vector_times: list[float] = []
    par1_times: list[float] = []
    par4_times: list[float] = []
    last_parallel = None
    for _ in range(ROUNDS):
        elapsed, _search = _build(library, "vector")
        vector_times.append(elapsed)
        elapsed, search = _build(library, "parallel", {"jobs": 1})
        par1_times.append(elapsed)
        if last_parallel is not None:
            last_parallel.close()
        last_parallel = search
        elapsed, search = _build(library, "parallel", {"jobs": 4})
        par4_times.append(elapsed)
        search.close()

    # The parallel closure must round-trip the streaming store writer
    # and survive a full verification pass.
    store_path = Path(
        os.environ.get("BENCH_PARALLEL_STORE", "/tmp/bench_parallel.rpro")
    )
    header = save_search(last_parallel, store_path)
    verify_store(store_path)
    assert tuple(header.level_sizes) == GOLDEN_B
    shards = dict(header.shards)
    last_parallel.close()
    store_path.unlink()

    vector_s = min(vector_times)
    par1_s = min(par1_times)
    par4_s = min(par4_times)
    numbers = {
        "cost_bound": COST_BOUND,
        "closure_size": int(sum(GOLDEN_B)),
        "vector_s": vector_s,
        "parallel_jobs1_s": par1_s,
        "parallel_jobs4_s": par4_s,
        "vector_runs_s": [round(t, 4) for t in vector_times],
        "parallel_jobs1_runs_s": [round(t, 4) for t in par1_times],
        "parallel_jobs4_runs_s": [round(t, 4) for t in par4_times],
        "speedup_jobs1": vector_s / par1_s,
        "speedup_jobs4": vector_s / par4_s,
        "speedup": vector_s / min(par1_s, par4_s),
        "cpus": os.cpu_count() or 1,
        "shard_bits": shards.get("shard_bits"),
        "golden_counts_identical": True,
        "store_verified": True,
        "python": platform.python_version(),
        "numpy": __import__("numpy").__version__,
    }
    _JSON_PATH.write_text(json.dumps(numbers, indent=2) + "\n")
    return numbers


def report(numbers: dict) -> str:
    return (
        f"cost bound:            {numbers['cost_bound']:10d}\n"
        f"closure size:          {numbers['closure_size']:10d}\n"
        f"cpus on this machine:  {numbers['cpus']:10d}\n"
        f"vector kernel:         {numbers['vector_s'] * 1e3:10.1f} ms\n"
        f"parallel --jobs 1:     "
        f"{numbers['parallel_jobs1_s'] * 1e3:10.1f} ms "
        f"({numbers['speedup_jobs1']:.2f}x)\n"
        f"parallel --jobs 4:     "
        f"{numbers['parallel_jobs4_s'] * 1e3:10.1f} ms "
        f"({numbers['speedup_jobs4']:.2f}x)\n"
        f"(wrote {_JSON_PATH.name})"
    )


def _required_speedup(cpus: int) -> tuple[float, str]:
    """The honest bar for this machine size.

    The ISSUE-5 acceptance bar -- >= 2x at --jobs 4 -- assumes the
    workers have cores to run on.  On fewer than 4 CPUs the pool can
    only add IPC overhead, so the assertable floor degrades to the
    purely algorithmic jobs=1 gain (relation filter + sharded dedup),
    which must still beat the vector kernel outright.
    """
    if cpus >= 4:
        return 2.0, "jobs=4 on >=4 CPUs must be >= 2x the vector kernel"
    return 1.15, (
        f"single/few-CPU runner ({cpus} cpus): the sequential sharded "
        "engine must still beat the vector kernel by >= 1.15x"
    )


@pytest.mark.benchmark
def test_parallel_engine_beats_vector_kernel():
    numbers = measure()
    print("\n" + report(numbers))
    bar, why = _required_speedup(numbers["cpus"])
    achieved = (
        numbers["speedup_jobs4"]
        if numbers["cpus"] >= 4
        else numbers["speedup"]
    )
    assert achieved >= bar, (
        f"parallel engine only {achieved:.2f}x vs the vector kernel; "
        f"bar for this machine: {bar}x ({why})"
    )


if __name__ == "__main__":
    print(report(measure()))
    sys.exit(0)
