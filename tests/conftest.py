"""Shared fixtures: expensive objects built once per test session.

The cascade search and FMCF closures are deterministic and immutable
once extended, so sharing them across tests is safe and keeps the suite
fast (the full cost-7 closure alone visits ~6.9e5 permutations).

Marker convention (registered in pyproject.toml):

* ``slow`` -- multi-second tests (exhaustive sweeps, end-to-end example
  scripts).  Deselected by the default ``addopts``; run them with
  ``pytest -m slow`` or everything with ``pytest --override-ini addopts=``.
* ``benchmark`` -- timing-sensitive performance assertions (the
  ``benchmarks/`` harness).  Same treatment, so a loaded CI machine
  cannot flake the functional tier.
"""

from __future__ import annotations

import pytest

from repro.baselines.nct import NCTLibrary, NCTSynthesizer
from repro.core.fmcf import find_minimum_cost_circuits
from repro.core.search import CascadeSearch
from repro.gates.library import GateLibrary
from repro.mvl.labels import label_space


@pytest.fixture(scope="session")
def space3():
    """The paper's reduced 38-label space for 3 qubits."""
    return label_space(3, reduced=True)


@pytest.fixture(scope="session")
def space3_full():
    return label_space(3, reduced=False)


@pytest.fixture(scope="session")
def space2_full():
    """The 16-label space of Table 1."""
    return label_space(2, reduced=False)


@pytest.fixture(scope="session")
def library3():
    """The paper's 18-gate library on 3 qubits."""
    return GateLibrary(3)


@pytest.fixture(scope="session")
def library2():
    return GateLibrary(2)


@pytest.fixture(scope="session")
def search3(library3):
    """A shared parent-tracking search; tests extend it as needed."""
    return CascadeSearch(library3, track_parents=True)


@pytest.fixture(scope="session")
def batch3(search3):
    """Batch synthesis index over the shared closure at the paper's cb = 7."""
    from repro.core.batch import BatchSynthesizer

    return BatchSynthesizer(search3, cost_bound=7)


@pytest.fixture(scope="session")
def cost_table5(library3, search3):
    """FMCF to cost 5 (covers Toffoli); fast."""
    return find_minimum_cost_circuits(library3, cost_bound=5, search=search3)


@pytest.fixture(scope="session")
def cost_table7(library3, search3):
    """The paper's full cb = 7 table."""
    return find_minimum_cost_circuits(library3, cost_bound=7, search=search3)


@pytest.fixture(scope="session")
def nct_synthesizer():
    """Complete optimal-NCT BFS table on 3 wires (40320 functions)."""
    return NCTSynthesizer(NCTLibrary(3))
