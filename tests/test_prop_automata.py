"""Property-based tests: automata-layer probability invariants."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.machine import QuantumStateMachine
from repro.automata.markov import MarkovChain
from repro.core.circuit import Circuit
from repro.gates.library import GateLibrary

_LIBRARY = GateLibrary(3)
_GATE_NAMES = [e.name for e in _LIBRARY.gates]


@st.composite
def reasonable_machines(draw):
    """Random reasonable 3-wire machines: 1 input wire, 2 state wires."""
    names = draw(st.lists(st.sampled_from(_GATE_NAMES), min_size=0, max_size=4))
    circuit = Circuit.from_names(names, 3)
    if not circuit.is_reasonable():
        circuit = Circuit.empty(3)
    return QuantumStateMachine(
        circuit, input_wires=(0,), state_wires=(1, 2)
    )


class TestJointDistribution:
    @given(reasonable_machines(), st.integers(0, 1), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_distributions_normalize(self, machine, inp, state):
        state_bits = ((state >> 1) & 1, state & 1)
        joint = machine.joint_distribution((inp,), state_bits)
        assert sum(joint.values()) == 1
        assert all(p > 0 for p in joint.values())

    @given(reasonable_machines(), st.integers(0, 1), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_probabilities_are_dyadic(self, machine, inp, state):
        """Every outcome probability is 1/2^k (product of fair coins)."""
        state_bits = ((state >> 1) & 1, state & 1)
        for p in machine.joint_distribution((inp,), state_bits).values():
            assert p.numerator == 1
            assert p.denominator & (p.denominator - 1) == 0

    @given(reasonable_machines(), st.integers(0, 1))
    @settings(max_examples=30, deadline=None)
    def test_markov_rows_stochastic(self, machine, inp):
        chain = MarkovChain.from_machine(machine, (inp,))
        for row in chain.matrix:
            assert sum(row) == 1

    @given(reasonable_machines(), st.integers(0, 1), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_n_step_preserves_mass(self, machine, inp, steps):
        chain = MarkovChain.from_machine(machine, (inp,))
        start = [Fraction(1)] + [Fraction(0)] * (chain.size - 1)
        dist = chain.n_step_distribution(start, steps)
        assert sum(dist) == 1

    @given(reasonable_machines(), st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_sampled_steps_live_in_support(self, machine, rnd):
        import random

        rng = random.Random(rnd.randrange(10**6))
        machine.reset()
        for _ in range(3):
            before = machine.state
            step = machine.step((1,), rng)
            joint = machine.joint_distribution((1,), before)
            assert (step.output_bits, step.state_after) in joint
