"""Property-based tests: search/synthesis invariants (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mce import express
from repro.gates import named
from repro.perm.permutation import Permutation


class TestWitnessInvariants:
    @given(cost=st.integers(min_value=1, max_value=4), rnd=st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_witnesses_realize_their_permutation(
        self, cost, rnd, search3, library3
    ):
        level = search3.level(cost)
        perm, _mask = level[rnd.randrange(len(level))]
        circuit = search3.witness_circuit(perm)
        assert len(circuit) == cost
        assert circuit.permutation(library3.space).images == perm

    @given(cost=st.integers(min_value=1, max_value=4), rnd=st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_witnesses_are_reasonable_cascades(self, cost, rnd, search3):
        level = search3.level(cost)
        perm, _mask = level[rnd.randrange(len(level))]
        circuit = search3.witness_circuit(perm)
        assert circuit.is_reasonable()

    @given(cost=st.integers(min_value=0, max_value=4), rnd=st.randoms(use_true_random=False))
    @settings(max_examples=20, deadline=None)
    def test_level_members_have_no_cheaper_path(self, cost, rnd, search3):
        level = search3.level(cost)
        perm, _mask = level[rnd.randrange(len(level))]
        assert search3.cost_of(perm) == cost


class TestExpressInvariants:
    @given(images=st.permutations(list(range(8))))
    @settings(max_examples=20, deadline=None)
    def test_not_normalization_consistency(self, images, library3, search3):
        """For any target: the NOT mask strips to a zero-fixing remainder,
        and if synthesis succeeds the circuit realizes the target."""
        from repro.errors import CostBoundExceededError

        target = Permutation.from_images(images)
        try:
            result = express(
                target, library3, cost_bound=5, search=search3
            )
        except CostBoundExceededError:
            return  # fine: the target costs more than the test bound
        assert result.circuit.binary_permutation() == target
        assert result.cost == result.circuit.two_qubit_count
        # The NOT mask is the preimage of the zero pattern.
        assert result.not_mask == target.inverse()(0)

    @given(mask=st.integers(min_value=0, max_value=7))
    @settings(max_examples=8, deadline=None)
    def test_not_layer_conjugates_cost(self, mask, library3, search3):
        """cost(a * g) == cost(g) for free NOT layers a (Theorem 2)."""
        layer = named.not_layer_permutation(mask)
        for base_name in ("peres", "toffoli"):
            base = named.TARGETS[base_name]
            shifted = layer * base
            result = express(shifted, library3, search=search3)
            baseline = express(base, library3, search=search3)
            assert result.cost == baseline.cost


class TestProbabilisticInvariants:
    @given(cost=st.integers(min_value=1, max_value=3), rnd=st.randoms(use_true_random=False))
    @settings(max_examples=15, deadline=None)
    def test_spec_from_reachable_cascade_is_feasible(
        self, cost, rnd, search3, library3
    ):
        from repro.core.probabilistic import (
            ProbabilisticSpec,
            express_probabilistic,
        )

        level = search3.level(cost)
        perm, _mask = level[rnd.randrange(len(level))]
        space = library3.space
        outputs = tuple(space.pattern(perm[i]) for i in range(8))
        spec = ProbabilisticSpec(outputs)
        result = express_probabilistic(spec, library3, search=search3)
        assert result.cost <= cost
        for index, pattern in enumerate(outputs):
            from repro.mvl.patterns import binary_patterns

            inputs = list(binary_patterns(3))
            assert result.circuit.strict_apply(inputs[index]) == pattern
