"""Unit tests for the quaternary value algebra (repro.mvl.values)."""

import pytest
from fractions import Fraction

from repro.errors import InvalidValueError
from repro.mvl.values import (
    Qv,
    ZERO,
    ONE,
    V0,
    V1,
    apply_not,
    apply_v,
    apply_vdag,
    is_binary,
    measurement_probabilities,
)

ALL = [Qv.ZERO, Qv.ONE, Qv.V0, Qv.V1]


class TestQvBasics:
    def test_integer_codes_match_paper_sort_order(self):
        assert [int(v) for v in ALL] == [0, 1, 2, 3]
        assert Qv.ZERO < Qv.ONE < Qv.V0 < Qv.V1

    def test_str_forms(self):
        assert [str(v) for v in ALL] == ["0", "1", "V0", "V1"]

    def test_is_binary(self):
        assert Qv.ZERO.is_binary and Qv.ONE.is_binary
        assert not Qv.V0.is_binary and not Qv.V1.is_binary

    def test_is_binary_function_coerces_ints(self):
        assert is_binary(0) and is_binary(1)
        assert not is_binary(2) and not is_binary(3)

    def test_bit_of_binary_values(self):
        assert Qv.ZERO.bit == 0
        assert Qv.ONE.bit == 1

    def test_bit_of_mixed_value_raises(self):
        with pytest.raises(InvalidValueError):
            _ = Qv.V0.bit
        with pytest.raises(InvalidValueError):
            _ = Qv.V1.bit


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", Qv.ZERO),
            ("1", Qv.ONE),
            ("V0", Qv.V0),
            ("v1", Qv.V1),
            (" V0 ", Qv.V0),
        ],
    )
    def test_parse_plain(self, text, expected):
        assert Qv.from_string(text) is expected

    def test_parse_vdag_aliases_follow_paper_identities(self):
        # Paper: V0 = V+1 and V1 = V+0.
        assert Qv.from_string("V+1") is Qv.V0
        assert Qv.from_string("V+0") is Qv.V1

    @pytest.mark.parametrize("bad", ["", "2", "V2", "x", "VV0"])
    def test_parse_garbage_raises(self, bad):
        with pytest.raises(InvalidValueError):
            Qv.from_string(bad)


class TestVAction:
    def test_v_four_cycle(self):
        # 0 -> V0 -> 1 -> V1 -> 0 (Section 2 identities).
        assert apply_v(Qv.ZERO) is Qv.V0
        assert apply_v(Qv.V0) is Qv.ONE
        assert apply_v(Qv.ONE) is Qv.V1
        assert apply_v(Qv.V1) is Qv.ZERO

    def test_vdag_is_inverse_of_v(self):
        for v in ALL:
            assert apply_vdag(apply_v(v)) is v
            assert apply_v(apply_vdag(v)) is v

    def test_v_squared_is_not(self):
        # V * V = NOT on every value.
        for v in ALL:
            assert apply_v(apply_v(v)) is apply_not(v)

    def test_vdag_squared_is_not(self):
        for v in ALL:
            assert apply_vdag(apply_vdag(v)) is apply_not(v)

    def test_v_has_order_four(self):
        for v in ALL:
            w = v
            for _ in range(4):
                w = apply_v(w)
            assert w is v

    def test_not_is_involution(self):
        for v in ALL:
            assert apply_not(apply_not(v)) is v

    def test_not_swaps_mixed_values(self):
        assert apply_not(Qv.V0) is Qv.V1
        assert apply_not(Qv.V1) is Qv.V0

    def test_x_conjugation_fixes_v(self):
        # Matrix identity X V X = V at the value level.
        for v in ALL:
            assert apply_not(apply_v(apply_not(v))) is apply_v(v)


class TestMeasurement:
    def test_binary_values_deterministic(self):
        assert measurement_probabilities(Qv.ZERO) == {0: 1, 1: 0}
        assert measurement_probabilities(Qv.ONE) == {0: 0, 1: 1}

    def test_mixed_values_are_fair_coins(self):
        for v in (Qv.V0, Qv.V1):
            dist = measurement_probabilities(v)
            assert dist == {0: Fraction(1, 2), 1: Fraction(1, 2)}

    def test_probabilities_are_exact_fractions(self):
        for v in ALL:
            for p in measurement_probabilities(v).values():
                assert isinstance(p, Fraction)

    def test_distributions_sum_to_one(self):
        for v in ALL:
            assert sum(measurement_probabilities(v).values()) == 1


class TestModuleConstants:
    def test_aliases(self):
        assert ZERO is Qv.ZERO
        assert ONE is Qv.ONE
        assert V0 is Qv.V0
        assert V1 is Qv.V1
