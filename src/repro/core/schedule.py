"""Circuit depth: ASAP scheduling of cascades onto parallel layers.

Quantum cost counts gates; *depth* counts time steps when gates acting
on disjoint wires fire simultaneously.  The paper optimizes cost only;
this analyzer reports the depth of its circuits (all of the paper's
minimal cascades turn out to be fully sequential -- every consecutive
pair shares a wire) and provides the layering for visualization and for
depth-aware comparisons between implementations of the same function.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.gates.gate import Gate


def gate_wires(gate: Gate) -> frozenset[int]:
    """The wires a gate occupies (target plus control, if any)."""
    wires = {gate.target}
    if gate.control is not None:
        wires.add(gate.control)
    return frozenset(wires)


@dataclass(frozen=True)
class Schedule:
    """An ASAP layering of a cascade.

    Attributes:
        circuit: the scheduled cascade.
        layers: tuple of layers; each layer is a tuple of gate indices
            (into ``circuit.gates``) that fire simultaneously.
    """

    circuit: Circuit
    layers: tuple[tuple[int, ...], ...]

    @property
    def depth(self) -> int:
        """Number of parallel time steps."""
        return len(self.layers)

    @property
    def width(self) -> int:
        """Largest number of simultaneous gates."""
        return max((len(layer) for layer in self.layers), default=0)

    def layer_names(self) -> list[list[str]]:
        """Gate names per layer (presentation helper)."""
        return [
            [self.circuit[i].name for i in layer] for layer in self.layers
        ]


def asap_schedule(circuit: Circuit) -> Schedule:
    """Greedy ASAP scheduling respecting wire conflicts.

    A gate is placed in the earliest layer after the last layer that
    touches any of its wires.  This preserves the cascade's semantics
    because gates on disjoint wires commute exactly (their unitaries act
    on disjoint tensor factors).
    """
    ready_at = [0] * circuit.n_qubits  # first free layer per wire
    layers: list[list[int]] = []
    for index, gate in enumerate(circuit):
        wires = gate_wires(gate)
        layer = max(ready_at[w] for w in wires)
        while len(layers) <= layer:
            layers.append([])
        layers[layer].append(index)
        for w in wires:
            ready_at[w] = layer + 1
    return Schedule(circuit=circuit, layers=tuple(tuple(l) for l in layers))


def depth(circuit: Circuit) -> int:
    """ASAP depth of a cascade."""
    return asap_schedule(circuit).depth


def is_fully_sequential(circuit: Circuit) -> bool:
    """True when no two gates can fire simultaneously (depth == size)."""
    return depth(circuit) == len(circuit)


def min_depth_implementation(results) -> "object":
    """Pick the minimum-depth member of a list of synthesis results.

    Cost-equal implementations (e.g. the paper's four Toffoli variants)
    can still differ in depth; this helper selects the shallowest.
    """
    return min(results, key=lambda r: depth(r.circuit))
