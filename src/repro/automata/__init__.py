"""Quantum automata: probabilistic state machines from quantum circuits.

Section 4 of the paper: a synthesized binary-input/quaternary-output
circuit followed by measurement behaves as a *probabilistic combinational
circuit*; adding memory elements and a feedback loop (Figure 3) yields a
probabilistic finite state machine with quantum-generated randomness --
the basis for controlled random number generators and hidden Markov
models.

* :mod:`repro.automata.spec` -- machine-level synthesis specifications.
* :mod:`repro.automata.machine` -- the Figure 3 execution model.
* :mod:`repro.automata.markov` -- induced Markov-chain analysis.
* :mod:`repro.automata.hmm` -- hidden Markov model view (forward algorithm).
* :mod:`repro.automata.rng` -- controlled quantum random bit generators.
"""

from repro.automata.spec import MachineSynthesisSpec, synthesize_machine
from repro.automata.machine import QuantumStateMachine, MachineStep
from repro.automata.markov import MarkovChain
from repro.automata.hmm import QuantumHMM
from repro.automata.rng import ControlledRandomBitGenerator

__all__ = [
    "MachineSynthesisSpec",
    "synthesize_machine",
    "QuantumStateMachine",
    "MachineStep",
    "MarkovChain",
    "QuantumHMM",
    "ControlledRandomBitGenerator",
]
