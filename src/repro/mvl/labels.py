"""Label spaces: the paper's enumeration of quaternary patterns.

A :class:`LabelSpace` assigns consecutive integer labels to patterns so
that quantum gates become permutations of labels:

* **reduced** space (paper, Section 3, used for 3 qubits): only the
  *permutable* patterns -- those containing a pure ``1``, plus the all-zero
  pattern.  For n = 3 this is 64 - 27 + 1 = 38 labels.  The 26 dropped
  patterns are fixed by every gate so they carry no information.
* **full** space (paper, Table 1, used for 2 qubits): all 4**n patterns.

Both spaces order the pure binary patterns first ("from small to big"),
then the remaining patterns, also ascending.  Labels are 0-based in code;
:meth:`LabelSpace.paper_label` converts to the paper's 1-based display
convention.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from functools import lru_cache

from repro.errors import InvalidPermutationError, InvalidValueError
from repro.mvl.patterns import Pattern, all_digit_patterns, all_patterns
from repro.mvl.values import Qv


class LabelSpace:
    """Bijection between quaternary patterns and integer labels.

    Args:
        n_qubits: number of wires (the paper treats 2 and 3; any n >= 1
            is supported, with label counts 4**n or 4**n - 3**n + 1).
        reduced: drop the unpermutable patterns (default True, matching
            the 38-label space of Section 3).  Use ``reduced=False`` to
            regenerate the full 16-row Table 1 layout.
        ordering: how the non-binary block is sorted.  ``"value"``
            (default) is plain ascending order with 0 < 1 < V0 < V1 --
            the "from small to big" rule of Section 3, validated by every
            printed 3-qubit permutation and banned set.  ``"grouped"``
            sorts first by *which wires are mixed* (as a binary mask,
            wire 0 most significant) and then ascending -- the layout of
            the paper's 2-qubit Table 1 (B-mixed rows 5-8, A-mixed 9-12,
            both-mixed 13-16).  Binary patterns always come first, so the
            two orderings induce the same permutation for any gate whose
            moved labels stay in the shared prefix (e.g. Table 1's
            ``(3,7,4,8)``).
    """

    def __init__(
        self,
        n_qubits: int,
        reduced: bool = True,
        ordering: str = "value",
        radix: int = 2,
    ):
        if n_qubits < 1:
            raise InvalidValueError("label space needs at least one qubit")
        if ordering not in ("value", "grouped"):
            raise InvalidValueError(f"unknown ordering {ordering!r}")
        if radix not in (2, 3, 4):
            raise InvalidValueError(
                f"radix {radix} unsupported (2, 3 and 4 are implemented)"
            )
        self._n_qubits = n_qubits
        self._reduced = reduced
        self._ordering = ordering
        self._radix = radix
        if radix != 2:
            # Digit space: qudit basis states are plain classical digits
            # 0..radix-1 per wire -- there is no superposition alphabet,
            # so nothing is unpermutable and nothing gets dropped.  The
            # engine's binary sub-domain S degenerates to the whole
            # space: every label is "classical" and every cascade fixes
            # S trivially (banned sets are empty).
            if ordering != "value":
                raise InvalidValueError(
                    "digit spaces support only the 'value' ordering"
                )
            self._patterns = tuple(all_digit_patterns(n_qubits, radix))
            self._label_of = {p: i for i, p in enumerate(self._patterns)}
            return
        binary = []
        rest = []
        for pattern in all_patterns(n_qubits):
            if pattern.is_binary:
                binary.append(pattern)
            elif not reduced or pattern.is_permutable:
                rest.append(pattern)
        if ordering == "grouped":
            rest.sort(key=_mixedness_key)
        # all_patterns yields ascending already; binary patterns first,
        # then the remaining patterns under the chosen ordering.
        self._patterns: tuple[Pattern, ...] = tuple(binary + rest)
        self._label_of = {p: i for i, p in enumerate(self._patterns)}

    def _canonical(self, pattern) -> tuple:
        """Canonical dict key for a caller-supplied pattern."""
        if self._radix == 2:
            return Pattern(pattern)
        return tuple(int(v) for v in pattern)

    # -- basic queries -----------------------------------------------------

    @property
    def n_qubits(self) -> int:
        """Number of wires."""
        return self._n_qubits

    @property
    def reduced(self) -> bool:
        """True if unpermutable patterns were dropped."""
        return self._reduced

    @property
    def ordering(self) -> str:
        """Non-binary block ordering: ``"value"`` or ``"grouped"``."""
        return self._ordering

    @property
    def radix(self) -> int:
        """Wire radix: 2 (the paper's qubits), 3 (qutrits) or 4."""
        return self._radix

    @property
    def size(self) -> int:
        """Number of labels (38 for the reduced 3-qubit space)."""
        return len(self._patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    @property
    def n_binary(self) -> int:
        """Number of "classical" patterns; these occupy the low labels.

        For radix 2 these are the 2**n pure binary patterns (the paper's
        set S).  In a digit space every pattern is classical, so S is the
        whole space and ``n_binary == size``.
        """
        if self._radix != 2:
            return len(self._patterns)
        return 2**self._n_qubits

    @property
    def patterns(self) -> tuple[Pattern, ...]:
        """All patterns in label order."""
        return self._patterns

    def pattern(self, label: int) -> Pattern:
        """The pattern carried by a 0-based label."""
        try:
            return self._patterns[label]
        except IndexError:
            raise InvalidValueError(
                f"label {label} out of range 0..{self.size - 1}"
            ) from None

    def label(self, pattern: Pattern) -> int:
        """0-based label of a pattern.

        Raises:
            InvalidValueError: if the pattern is outside this space (e.g.
                an unpermutable pattern queried against a reduced space).
        """
        key = self._canonical(pattern)
        try:
            return self._label_of[key]
        except KeyError:
            raise InvalidValueError(
                f"pattern {key} is not in this label space"
            ) from None

    def __contains__(self, pattern: Pattern) -> bool:
        return self._canonical(pattern) in self._label_of

    @staticmethod
    def paper_label(label: int) -> int:
        """Convert a 0-based label to the paper's 1-based numbering."""
        return label + 1

    # -- the binary sub-domain S --------------------------------------------

    @property
    def binary_labels(self) -> range:
        """Labels of the pure binary patterns -- the paper's set S."""
        return range(self.n_binary)

    @property
    def s_mask(self) -> int:
        """Bitmask with a bit set for every label in S."""
        return (1 << self.n_binary) - 1

    # -- banned sets ---------------------------------------------------------

    def banned_mask(self, wires: Iterable[int]) -> int:
        """Bitmask of labels whose pattern is mixed on any of *wires*.

        This encodes the paper's banned sets: ``banned_mask([0])`` is
        N_A (qubit A carries V0/V1), ``banned_mask([0, 1])`` is N_AB, etc.
        A gate whose controls (or XOR operands) live on *wires* may be
        cascaded after a circuit ``f`` iff the images of the binary labels
        under ``f`` avoid this mask (Definition 1, "reasonable product").
        """
        wire_list = list(wires)
        for w in wire_list:
            if not 0 <= w < self._n_qubits:
                raise InvalidValueError(f"wire {w} out of range")
        if self._radix != 2:
            # Digit spaces have no mixed values: every wire always
            # carries a classical digit, so no pattern is ever banned.
            return 0
        mask = 0
        for label, pattern in enumerate(self._patterns):
            if any(not pattern[w].is_binary for w in wire_list):
                mask |= 1 << label
        return mask

    def banned_labels(self, wires: Iterable[int]) -> tuple[int, ...]:
        """The banned set as a sorted tuple of 1-based (paper) labels."""
        mask = self.banned_mask(wires)
        return tuple(
            label + 1 for label in range(self.size) if (mask >> label) & 1
        )

    # -- permutation construction --------------------------------------------

    def images_from_map(
        self, transform: Callable[[Pattern], Pattern]
    ) -> tuple[int, ...]:
        """Turn a pattern transform into a label image array.

        Applies *transform* to every pattern in the space and looks up the
        label of each result.  Validates that the images form a
        permutation of the label set.

        Raises:
            InvalidPermutationError: if the transform maps some pattern
                outside the space or is not a bijection on it.
        """
        images = []
        for pattern in self._patterns:
            result = transform(pattern)
            try:
                images.append(self._label_of[self._canonical(result)])
            except KeyError:
                raise InvalidPermutationError(
                    f"transform maps {pattern} to {result}, "
                    "which is outside the label space"
                ) from None
        if len(set(images)) != self.size:
            raise InvalidPermutationError(
                "transform is not a bijection on the label space"
            )
        return tuple(images)

    def describe_labels(self, labels: Sequence[int]) -> str:
        """Human-readable rendering of 0-based labels as patterns."""
        return ", ".join(f"{lbl + 1}:{self.pattern(lbl)}" for lbl in labels)

    def __repr__(self) -> str:
        mode = "reduced" if self._reduced else "full"
        if self._radix != 2:
            return (
                f"LabelSpace(n_qubits={self._n_qubits}, "
                f"radix={self._radix}, size={self.size})"
            )
        return f"LabelSpace(n_qubits={self._n_qubits}, {mode}, size={self.size})"


def _mixedness_key(pattern: Pattern) -> tuple[int, Pattern]:
    """Sort key of the paper's Table 1: mixed-wire mask, then value order."""
    mask = 0
    for value in pattern:
        mask = (mask << 1) | (0 if value.is_binary else 1)
    return (mask, pattern)


@lru_cache(maxsize=16)
def label_space(
    n_qubits: int,
    reduced: bool = True,
    ordering: str = "value",
    radix: int = 2,
) -> LabelSpace:
    """Shared, cached label-space instances (they are immutable)."""
    return LabelSpace(n_qubits, reduced, ordering, radix)
