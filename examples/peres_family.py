"""The Peres-like family: the cheapest universal 3-qubit gates.

Reproduces the Section 5 analysis of G[4] (all reversible functions of
minimal quantum cost 4):

* 60 members are plain CNOT networks (linear, not universal);
* 24 members use controlled-V/V+ gates -- and every one of them is a
  *universal* gate: together with NOT and CNOT it generates all 40320
  reversible 3-bit functions;
* under qubit relabeling the 24 split into 4 orbits of 6, represented by
  the paper's g1 (Peres), g2, g3, g4 (Figures 4-7).

Run:  python examples/peres_family.py
"""

from repro import GateLibrary, express, find_minimum_cost_circuits, named
from repro.core.search import CascadeSearch
from repro.core.universality import analyze_g4, match_paper_representatives
from repro.render.diagram import circuit_diagram
from repro.render.tables import format_table

PAPER_SPECS = {
    "g1": "P=A, Q=B^A,     R=C^AB    (Peres)",
    "g2": "P=A, Q=B^AC',   R=C^A",
    "g3": "P=A, Q=B^A,     R=C^A'B",
    "g4": "P=A, Q=B^A,     R=C'^A'B'",
}


def main() -> None:
    library = GateLibrary(3)
    search = CascadeSearch(library, track_parents=True)
    table = find_minimum_cost_circuits(library, cost_bound=4, search=search)

    analysis = analyze_g4(table)
    print(f"|G[4]| = {len(table.members(4))} reversible functions of "
          f"minimal cost 4")
    print(f"  CNOT-network members : {len(analysis.feynman_only)}")
    print(f"  control-using members: {len(analysis.control_using)}")
    print(f"  universal gates      : {len(analysis.universal)} "
          f"(exactly the control-using ones)\n")

    mapping = match_paper_representatives(analysis)
    rows = []
    for name in sorted(mapping):
        orbit = analysis.orbits[mapping[name]]
        rows.append(
            [name, named.TARGETS[name].cycle_string(), len(orbit),
             PAPER_SPECS[name]]
        )
    print(format_table(
        ["gate", "permutation", "orbit size", "boolean spec"], rows
    ))

    print("\nMinimal realizations (one per family):")
    for name in sorted(mapping):
        result = express(named.TARGETS[name], library, search=search)
        print(f"\n{name} = {result.circuit}  (cost {result.cost})")
        print(circuit_diagram(result.circuit))


if __name__ == "__main__":
    main()
