"""Unit tests for circuits (repro.core.circuit)."""

import pytest

from repro.errors import (
    InvalidCircuitError,
    InvalidGateError,
    NonBinaryControlError,
)
from repro.core.circuit import Circuit
from repro.core.cost import CostModel
from repro.gates.gate import Gate
from repro.mvl.labels import label_space
from repro.mvl.patterns import Pattern
from repro.mvl.values import Qv


@pytest.fixture
def peres_circuit():
    """The paper's Figure 4 cascade."""
    return Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)


class TestConstruction:
    def test_from_names_star_separated(self):
        c = Circuit.from_names("V_CB*F_BA*V_CA*V+_CB", 3)
        assert c.names() == ("V_CB", "F_BA", "V_CA", "V+_CB")

    def test_from_names_list(self):
        c = Circuit.from_names(["F_AB", "F_BA"], 3)
        assert len(c) == 2

    def test_empty_needs_width(self):
        with pytest.raises(InvalidGateError):
            Circuit(())
        assert len(Circuit.empty(3)) == 0

    def test_mixed_widths_rejected(self):
        with pytest.raises(InvalidGateError):
            Circuit([Gate.v(1, 0, 3), Gate.v(1, 0, 2)])

    def test_width_inferred(self):
        c = Circuit([Gate.v(1, 0, 3)])
        assert c.n_qubits == 3


class TestContainer:
    def test_indexing_and_slicing(self, peres_circuit):
        assert peres_circuit[0].name == "V_CB"
        prefix = peres_circuit[:2]
        assert isinstance(prefix, Circuit)
        assert prefix.names() == ("V_CB", "F_BA")

    def test_concatenation(self):
        a = Circuit.from_names("F_AB", 3)
        b = Circuit.from_names("F_BA", 3)
        assert (a + b).names() == ("F_AB", "F_BA")

    def test_concatenation_width_mismatch(self):
        with pytest.raises(InvalidGateError):
            Circuit.from_names("F_AB", 3) + Circuit.from_names("F_AB", 2)

    def test_appended(self):
        c = Circuit.empty(3).appended(Gate.not_(0, 3))
        assert c.names() == ("N_A",)

    def test_appended_width_mismatch(self):
        with pytest.raises(InvalidGateError):
            Circuit.empty(3).appended(Gate.not_(0, 2))

    def test_equality_and_hash(self, peres_circuit):
        other = Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)
        assert peres_circuit == other
        assert hash(peres_circuit) == hash(other)


class TestTransforms:
    def test_dagger_reverses_and_adjoints(self, peres_circuit):
        d = peres_circuit.dagger()
        assert d.names() == ("V_CB", "V+_CA", "F_BA", "V+_CB")

    def test_dagger_inverts_binary_action(self, peres_circuit):
        d = peres_circuit.dagger()
        product = peres_circuit.binary_permutation() * d.binary_permutation()
        assert product.is_identity

    def test_adjoint_swapped_is_figure8_transform(self, peres_circuit):
        swapped = peres_circuit.adjoint_swapped()
        assert swapped.names() == ("V+_CB", "F_BA", "V+_CA", "V_CB")

    def test_adjoint_swapped_of_peres_is_peres(self, peres_circuit):
        # Figures 4 and 8: both realize the same Peres function.
        assert (
            peres_circuit.adjoint_swapped().binary_permutation()
            == peres_circuit.binary_permutation()
        )

    def test_relabeled(self, peres_circuit):
        relabeled = peres_circuit.relabeled({0: 1, 1: 0, 2: 2})
        assert relabeled.names() == ("V_CA", "F_AB", "V_CB", "V+_CA")


class TestCost:
    def test_unit_cost(self, peres_circuit):
        assert peres_circuit.cost() == 4
        assert peres_circuit.two_qubit_count == 4

    def test_not_gates_free_by_default(self):
        c = Circuit.from_names("N_A F_BA N_B", 3)
        assert c.cost() == 1
        assert c.not_count == 2

    def test_weighted_model(self, peres_circuit):
        model = CostModel(v_cost=2, vdag_cost=3, cnot_cost=1)
        # V_CB(2) + F_BA(1) + V_CA(2) + V+_CB(3) = 8.
        assert peres_circuit.cost(model) == 8


class TestQuaternarySemantics:
    def test_apply_cascades(self, peres_circuit):
        out = peres_circuit.apply(Pattern([1, 1, 0]))
        assert out == Pattern([1, 0, 1])

    def test_strict_apply_on_reasonable_cascade(self, peres_circuit):
        for bits in range(8):
            pattern = Pattern([(bits >> 2) & 1, (bits >> 1) & 1, bits & 1])
            out = peres_circuit.strict_apply(pattern)
            assert out.is_binary

    def test_strict_apply_raises_on_unreasonable_cascade(self):
        # V_BA leaves B mixed for A=1; F_BA then needs B binary.
        c = Circuit.from_names("V_BA F_BA", 3)
        with pytest.raises(NonBinaryControlError):
            c.strict_apply(Pattern([1, 0, 0]))

    def test_is_reasonable(self, peres_circuit):
        assert peres_circuit.is_reasonable()
        assert not Circuit.from_names("V_BA F_BA", 3).is_reasonable()

    def test_output_patterns(self, peres_circuit):
        outs = peres_circuit.output_patterns()
        assert len(outs) == 8
        assert outs[0] == Pattern([0, 0, 0])

    def test_probabilistic_cascade_strict_ok(self):
        # A lone V_BA is reasonable but yields mixed outputs.
        c = Circuit.from_names("V_BA", 3)
        out = c.strict_apply(Pattern([1, 0, 0]))
        assert out == Pattern([1, Qv.V0, 0])


class TestPermutationSemantics:
    def test_permutation_matches_gate_product(self, peres_circuit, space3, library3):
        perm = peres_circuit.permutation(space3)
        expected = library3.circuit_permutation(
            [library3.entry_for(g) for g in peres_circuit]
        )
        assert perm == expected

    def test_paper_peres_permutation(self, peres_circuit):
        assert peres_circuit.binary_permutation().cycle_string() == "(5,7,6,8)"

    def test_not_gate_on_reduced_space_rejected(self):
        c = Circuit.from_names("N_A", 3)
        with pytest.raises(InvalidCircuitError):
            c.permutation()

    def test_not_gate_on_full_space_allowed(self):
        c = Circuit.from_names("N_A", 3)
        perm = c.permutation(label_space(3, reduced=False))
        assert not perm.is_identity

    def test_binary_permutation_with_not_gates(self):
        c = Circuit.from_names("N_A", 3)
        perm = c.binary_permutation()
        assert perm(0) == 4  # 000 -> 100

    def test_binary_permutation_rejects_probabilistic(self):
        c = Circuit.from_names("V_BA", 3)
        with pytest.raises(InvalidCircuitError):
            c.binary_permutation()

    def test_binary_permutation_nonstrict_uses_dont_cares(self):
        c = Circuit.from_names("V_BA F_BA V_BA", 3)
        # Strict fails, non-strict applies the identity convention.
        with pytest.raises(NonBinaryControlError):
            c.binary_permutation(strict=True)

    def test_empty_circuit_identity(self):
        assert Circuit.empty(3).binary_permutation().is_identity


class TestUnitary:
    def test_unitary_of_empty_is_identity(self):
        assert Circuit.empty(2).unitary().is_identity()

    def test_unitary_product_order(self):
        # X then CNOT(B<-A): |00> -> |10> -> |11>.
        c = Circuit([Gate.not_(0, 2), Gate.cnot(1, 0, 2)])
        u = c.unitary()
        assert u.permutation_images()[0] == 3

    def test_unitary_is_unitary(self, peres_circuit):
        assert peres_circuit.unitary().is_unitary()


class TestFormatting:
    def test_str(self, peres_circuit):
        assert str(peres_circuit) == "V_CB * F_BA * V_CA * V+_CB"

    def test_str_empty(self):
        assert "identity" in str(Circuit.empty(3))

    def test_repr_roundtrip(self, peres_circuit):
        clone = eval(repr(peres_circuit), {"Circuit": Circuit})  # noqa: S307
        assert clone == peres_circuit
