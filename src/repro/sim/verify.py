"""End-to-end verification of synthesis results.

Every claim a synthesis makes is checked at *all three* semantic levels:

1. quaternary (strict product-state simulation -- also proves the cascade
   is *reasonable*, i.e. never relies on a don't-care),
2. permutation (the label-level algebra FMCF/MCE searched over),
3. unitary (exact dyadic matrices -- the physics).

A disagreement at any level is a bug in the library, not a tolerance
issue, because all three representations are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.circuit import Circuit
from repro.core.mce import SynthesisResult
from repro.core.probabilistic import ProbabilisticSynthesisResult
from repro.errors import NonBinaryControlError
from repro.gates.library import GateLibrary
from repro.linalg.constants import pattern_state
from repro.mvl.labels import LabelSpace
from repro.mvl.patterns import Pattern, binary_patterns
from repro.perm.permutation import Permutation
from repro.sim.exact import ExactSimulator


@dataclass
class VerificationReport:
    """Outcome of a verification run."""

    passed: bool
    checks: list[str] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        if ok:
            self.checks.append(name)
        else:
            self.passed = False
            self.failures.append(f"{name}: {detail}" if detail else name)

    def __bool__(self) -> bool:
        return self.passed


def verify_circuit_against_permutation(
    circuit: Circuit, target: Permutation
) -> VerificationReport:
    """Check a cascade implements a reversible target at all levels."""
    report = VerificationReport(passed=True)
    n = circuit.n_qubits

    # Level 1: strict quaternary simulation.
    try:
        perm = circuit.binary_permutation(strict=True)
        report.record("reasonable-cascade", True)
        report.record(
            "quaternary-permutation",
            perm == target,
            f"got {perm.cycle_string()}, want {target.cycle_string()}",
        )
    except NonBinaryControlError as exc:
        report.record("reasonable-cascade", False, str(exc))
        return report

    # Level 3: exact unitary on every binary basis state.
    simulator = ExactSimulator(n)
    for index, pattern in enumerate(binary_patterns(n)):
        expected_pattern = _binary_pattern(target(index), n)
        ok = simulator.agrees_with_pattern(circuit, pattern, expected_pattern)
        report.record(f"unitary-basis-{index}", ok, f"input {pattern}")
    return report


def _mv_space(result: SynthesisResult) -> LabelSpace | None:
    """The digit label space of an MV result, or None for binary results.

    Binary results always target the ``2**n`` binary patterns; a target
    of degree ``radix**n`` for radix 3/4 identifies the digit space the
    cascade was searched on.
    """
    n = result.circuit.n_qubits
    if result.target.degree == 2**n:
        return None
    from repro.mvl.labels import label_space

    for radix in (3, 4):
        if radix**n == result.target.degree:
            return label_space(n, radix=radix)
    return None


def verify_synthesis(result: SynthesisResult) -> VerificationReport:
    """Verify a :func:`repro.core.mce.express` result.

    Binary results are checked at all three semantic levels (strict
    quaternary simulation, label permutation, exact unitary).  MV
    results live in a single exact representation -- digit permutations
    -- so the checks are the recomputed label permutation against the
    target plus cost consistency under the library's cost convention.
    """
    space = _mv_space(result)
    if space is not None:
        report = VerificationReport(passed=True)
        realized = result.circuit.permutation(space)
        report.record(
            "mv-permutation",
            realized == result.target,
            f"got {realized.cycle_string()}, "
            f"want {result.target.cycle_string()}",
        )
        report.record(
            "cost-consistent",
            result.circuit.cost() == result.cost,
            f"circuit cost {result.circuit.cost()} vs claimed {result.cost}",
        )
        return report
    report = verify_circuit_against_permutation(result.circuit, result.target)
    report.record(
        "cost-consistent",
        result.circuit.two_qubit_count == result.cost,
        f"{result.circuit.two_qubit_count} 2-qubit gates vs cost {result.cost}",
    )
    return report


def verify_probabilistic_synthesis(
    result: ProbabilisticSynthesisResult,
) -> VerificationReport:
    """Verify an :func:`express_probabilistic` result at all levels."""
    report = VerificationReport(passed=True)
    circuit = result.circuit
    n = circuit.n_qubits
    simulator = ExactSimulator(n)
    for index, pattern in enumerate(binary_patterns(n)):
        expected = result.spec.outputs[index]
        try:
            produced = circuit.strict_apply(pattern)
        except NonBinaryControlError as exc:
            report.record(f"reasonable-{index}", False, str(exc))
            continue
        report.record(
            f"quaternary-{index}",
            produced == expected,
            f"got {produced}, want {expected}",
        )
        report.record(
            f"unitary-{index}",
            simulator.run(circuit, pattern) == pattern_state(expected),
            f"exact state mismatch for input {pattern}",
        )
    return report


def verify_gate_representation(
    library: GateLibrary, space: LabelSpace | None = None
) -> VerificationReport:
    """Cross-validate the MV abstraction against the unitary semantics.

    For every library gate and every label pattern on which the gate's
    constrained wires are binary, the exact unitary must map the
    pattern's product state to the product state of the permuted label:
    ``U_g |p> == |g(p)>`` *exactly*.  (On banned patterns the permutation
    uses the don't-care identity convention and no agreement is claimed;
    FMCF's banned masks guarantee those entries are never exercised.)
    """
    report = VerificationReport(passed=True)
    space = space or library.space
    for entry in library.gates:
        gate = entry.gate
        perm = entry.permutation
        for label, pattern in enumerate(space.patterns):
            if any(not pattern[w].is_binary for w in gate.constrained_wires):
                continue
            expected = space.pattern(perm(label))
            in_state = pattern_state(pattern)
            out_state = gate.unitary @ in_state
            report.record(
                f"{gate.name}@{label + 1}",
                out_state == pattern_state(expected),
                f"pattern {pattern}",
            )
    return report


def _binary_pattern(index: int, n_qubits: int) -> Pattern:
    bits = [(index >> (n_qubits - 1 - w)) & 1 for w in range(n_qubits)]
    from repro.mvl.patterns import pattern_from_bits

    return pattern_from_bits(bits)
