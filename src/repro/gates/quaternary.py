"""Quaternary gate library: the Muthukrishnan--Stroud alphabet at r = 4.

Extends the Di & Wei ternary construction (arXiv:1105.5485) one radix up,
the direction Mandal et al.'s quaternary synthesis work points: wire
values are ququart digits {0, 1, 2, 3}, single-qudit gates are the
elementary local permutations -- cyclic shifts ``X+1`` / ``X+2`` /
``X+3`` plus the six transpositions ``X01`` .. ``X23`` -- at cost 1, and
the two-qudit gates are their Muthukrishnan--Stroud controlled versions
(fire on control digit 3) at cost 2.

On ``width`` wires: ``9 * width`` single gates plus
``9 * width * (width - 1)`` controlled gates (36 for the default
width 2), acting on the full ``4**width``-label digit space.
"""

from __future__ import annotations

from repro.errors import InvalidGateError
from repro.gates.library import GateLibrary
from repro.gates.mv import mv_library_gates
from repro.mvl.labels import label_space

#: Store-header family identifier for :func:`quaternary_library` builds.
QUATERNARY_FAMILY = "quaternary-ms"


def quaternary_library(width: int = 2) -> GateLibrary:
    """The Muthukrishnan--Stroud library on *width* ququart wires.

    Raises:
        InvalidGateError: width < 2 (controlled gates need two wires) or
            width > 4 (4**width exceeds the kernel's 256-label cap).
    """
    if width < 2:
        raise InvalidGateError(
            "the quaternary library needs at least 2 wires for its "
            "controlled gates"
        )
    space = label_space(width, radix=4)
    return GateLibrary.from_gates(
        mv_library_gates(width, 4), space, family=QUATERNARY_FAMILY
    )
