"""Concrete gate matrices and quaternary value states (exact).

These are the matrices printed in Section 2 of the paper:

    V  = [[(1+i)/2, (1-i)/2],     V+ = [[(1-i)/2, (1+i)/2],
          [(1-i)/2, (1+i)/2]]           [(1+i)/2, (1-i)/2]]

with ``V @ V == V+ @ V+ == X`` (square root of NOT) and
``V @ V+ == I``.  Also provides the single-qubit states of the four
quaternary values and builders for controlled gates on arbitrary wires.
"""

from __future__ import annotations

from repro.errors import InvalidGateError
from repro.linalg.dyadic import DyadicComplex
from repro.linalg.matrix import Matrix
from repro.mvl.values import Qv

_HALF_P = DyadicComplex.half(1, 1)   # (1 + i) / 2
_HALF_M = DyadicComplex.half(1, -1)  # (1 - i) / 2

I2 = Matrix([[1, 0], [0, 1]])
X = Matrix([[0, 1], [1, 0]])
V = Matrix([[_HALF_P, _HALF_M], [_HALF_M, _HALF_P]])
VDAG = Matrix([[_HALF_M, _HALF_P], [_HALF_P, _HALF_M]])

_VALUE_STATES = {
    Qv.ZERO: Matrix.column([1, 0]),
    Qv.ONE: Matrix.column([0, 1]),
    Qv.V0: Matrix.column([_HALF_P, _HALF_M]),  # V |0>
    Qv.V1: Matrix.column([_HALF_M, _HALF_P]),  # V |1>
}


def value_state(value: Qv) -> Matrix:
    """Single-qubit state vector of a quaternary wire value (exact)."""
    return _VALUE_STATES[Qv(value)]


def pattern_state(pattern) -> Matrix:
    """Tensor-product state of a quaternary pattern (wire 0 most significant)."""
    state = value_state(pattern[0])
    for value in pattern[1:]:
        state = state.kron(value_state(value))
    return state


def controlled(
    operator: Matrix, target: int, control: int, n_qubits: int
) -> Matrix:
    """Controlled single-qubit *operator* embedded in an n-qubit unitary.

    ``U = |0><0|_control (x) I  +  |1><1|_control (x) operator_target``
    with wire 0 the most significant qubit (pattern convention).

    Args:
        operator: 2x2 matrix applied to *target* when *control* is |1>.
        target: data wire index.
        control: control wire index (must differ from target).
        n_qubits: total number of wires.
    """
    if target == control:
        raise InvalidGateError("control and target wires must differ")
    for wire in (target, control):
        if not 0 <= wire < n_qubits:
            raise InvalidGateError(f"wire {wire} out of range for {n_qubits} qubits")
    p0 = Matrix([[1, 0], [0, 0]])
    p1 = Matrix([[0, 0], [0, 1]])

    def embed(factors: dict[int, Matrix]) -> Matrix:
        acc = factors.get(0, I2)
        for wire in range(1, n_qubits):
            acc = acc.kron(factors.get(wire, I2))
        return acc

    return embed({control: p0}) + embed({control: p1, target: operator})


def cnot_matrix(target: int, control: int, n_qubits: int) -> Matrix:
    """CNOT (Feynman) unitary on n qubits: target ^= control."""
    return controlled(X, target, control, n_qubits)


def single_qubit(operator: Matrix, wire: int, n_qubits: int) -> Matrix:
    """A single-qubit operator embedded on *wire* of an n-qubit register."""
    if not 0 <= wire < n_qubits:
        raise InvalidGateError(f"wire {wire} out of range for {n_qubits} qubits")
    acc = operator if wire == 0 else I2
    for w in range(1, n_qubits):
        acc = acc.kron(operator if w == wire else I2)
    return acc
