"""Docs stay truthful: intra-repo links resolve, workflows stay named.

The link check is the same code the CI docs job runs
(``tools/check_links.py``); keeping it in tier-1 means a file rename
that orphans a README/docs link fails locally before it fails in CI.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import importlib.util

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestIntraRepoLinks:
    def test_readme_and_docs_links_resolve(self):
        checker = _load_checker()
        offenders = checker.broken_links(
            [REPO_ROOT / "README.md", REPO_ROOT / "docs"]
        )
        assert offenders == [], "\n".join(
            f"{md}: broken link -> {target}" for md, target in offenders
        )

    def test_checker_catches_a_broken_link(self, tmp_path):
        checker = _load_checker()
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](no/such/file.py) for details\n")
        offenders = checker.broken_links([bad])
        assert offenders == [(bad, "no/such/file.py")]

    def test_cli_entry_point(self, tmp_path):
        ok = tmp_path / "ok.md"
        ok.write_text("plain text, [external](https://example.com), "
                      "[anchor](#here)\n")
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "check_links.py"),
                str(ok),
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr


class TestDocsMentionTheWorkflows:
    """The README is organized around the three workflows."""

    def test_readme_covers_search_precompute_serve(self):
        text = (REPO_ROOT / "README.md").read_text()
        for needle in (
            "repro precompute",
            "repro serve",
            "--server",
            "BENCH_kernel.json",
            "BENCH_store.json",
            "BENCH_serve.json",
        ):
            assert needle in text, f"README lost its {needle!r} coverage"

    def test_architecture_maps_paper_to_modules(self):
        text = (REPO_ROOT / "docs" / "architecture.md").read_text()
        for needle in (
            "core/search.py",
            "core/kernel.py",
            "core/store.py",
            "core/batch.py",
            "server/",
            "level_row_offsets",
            "Theorem 2",
        ):
            assert needle in text, f"architecture.md lost {needle!r}"
