"""The sharded parallel expansion engine vs the vector/translate kernels.

The parallel engine is only allowed to be *faster*: for any library,
cost model, shard count, worker count, memory budget and spill state it
must produce levels byte-identical in content and discovery order --
with identical parent pointers -- to both reference kernels.  These
tests pin that determinism contract, the relation filter's exactness,
the sharded dedup table's claim protocol under forced collisions and
claim races, spill-to-disk behaviour, and the crash-mid-level
checkpoint/resume path.
"""

import json

import numpy as np
import pytest

from repro.core.cost import CostModel
from repro.core.dedup import ShardedDedupTable, parse_budget, shard_of
from repro.core.kernel import compute_masks, hash_rows, pack_rows
from repro.core.parallel import RelationFilter, ShardedExpansion
from repro.core.search import CascadeSearch
from repro.errors import InvalidValueError
from repro.gates.kinds import GateKind
from repro.gates.library import GateLibrary


def _trio(library, cost_model=None, bound=3, track_parents=True, options=None):
    kwargs = {"track_parents": track_parents}
    if cost_model is not None:
        kwargs["cost_model"] = cost_model
    searches = [
        CascadeSearch(library, kernel="translate", **kwargs),
        CascadeSearch(library, kernel="vector", **kwargs),
        CascadeSearch(
            library, kernel="parallel", kernel_options=options, **kwargs
        ),
    ]
    for search in searches:
        search.extend_to(bound)
    return searches


def _assert_identical(reference, other, bound):
    assert reference.stats().level_sizes == other.stats().level_sizes
    for cost in range(bound + 1):
        assert reference.level(cost) == other.level(cost), (
            f"level {cost} differs"
        )
    if reference.tracks_parents:
        assert (
            reference.export_state().parents == other.export_state().parents
        )


class TestKernelTrioEquivalence:
    def test_three_qubit_unit_costs(self, library3):
        translate, vector, parallel = _trio(library3, bound=4)
        _assert_identical(translate, vector, 4)
        _assert_identical(translate, parallel, 4)

    def test_two_qubit(self, library2):
        translate, _vector, parallel = _trio(library2, bound=5)
        _assert_identical(translate, parallel, 5)

    @pytest.mark.parametrize(
        "model",
        [
            CostModel(v_cost=1, vdag_cost=1, cnot_cost=2),
            CostModel(v_cost=2, vdag_cost=1, cnot_cost=1),
            CostModel(v_cost=2, vdag_cost=2, cnot_cost=3),
        ],
    )
    def test_non_unit_cost_models(self, library3, model):
        """Relation costs differ per gate; the filter must respect them."""
        translate, _vector, parallel = _trio(
            library3, cost_model=model, bound=4
        )
        _assert_identical(translate, parallel, 4)

    def test_partial_gate_alphabet(self):
        """V without V+: no inverse back-edges, fewer relations."""
        library = GateLibrary(3, kinds=(GateKind.V, GateKind.CNOT))
        translate, _vector, parallel = _trio(library, bound=4)
        _assert_identical(translate, parallel, 4)

    def test_counting_only(self, library3):
        translate, _vector, parallel = _trio(
            library3, bound=4, track_parents=False
        )
        _assert_identical(translate, parallel, 4)

    def test_four_qubit_multiword_masks(self):
        """176 labels -> 3 mask words: the filter's multiword path."""
        library = GateLibrary(4)
        translate, _vector, parallel = _trio(library, bound=2)
        _assert_identical(translate, parallel, 2)

    @pytest.mark.parametrize("shard_bits", [0, 1, 5, 9])
    def test_shard_count_is_invisible(self, library3, shard_bits):
        reference = CascadeSearch(library3, kernel="vector")
        reference.extend_to(4)
        sharded = CascadeSearch(
            library3,
            kernel="parallel",
            kernel_options={"shard_bits": shard_bits},
        )
        sharded.extend_to(4)
        _assert_identical(reference, sharded, 4)

    def test_relation_filter_off_is_identical(self, library3):
        plain = CascadeSearch(
            library3,
            kernel="parallel",
            kernel_options={"relation_filter": False},
        )
        plain.extend_to(4)
        filtered = CascadeSearch(library3, kernel="parallel")
        filtered.extend_to(4)
        _assert_identical(filtered, plain, 4)

    def test_worker_pool_jobs(self, library3):
        """jobs=2 drives the mmap-scratch worker-pool compose path."""
        reference = CascadeSearch(library3, kernel="vector")
        reference.extend_to(5)
        pooled = CascadeSearch(
            library3, kernel="parallel", kernel_options={"jobs": 2}
        )
        try:
            pooled.extend_to(5)
            _assert_identical(reference, pooled, 5)
        finally:
            pooled.close()

    def test_kernel_handoff_vector_to_parallel(self, library3):
        """use_kernel upgrades mid-closure and stays byte-identical."""
        handoff = CascadeSearch(library3, kernel="vector")
        handoff.extend_to(3)
        handoff.use_kernel("parallel", {"shard_bits": 3})
        handoff.extend_to(5)
        reference = CascadeSearch(library3, kernel="vector")
        reference.extend_to(5)
        _assert_identical(reference, handoff, 5)

    def test_restored_store_extends_with_parallel_kernel(self, library3):
        from repro.core.store import dump_search, loads_search

        base = CascadeSearch(library3, kernel="vector")
        base.extend_to(3)
        restored = loads_search(dump_search(base), library3)
        restored.use_kernel("parallel")
        restored.extend_to(5)
        reference = CascadeSearch(library3, kernel="vector")
        reference.extend_to(5)
        _assert_identical(reference, restored, 5)


class TestForcedCollisions:
    def test_constant_hash_still_exact(self, library2, monkeypatch):
        """Every candidate hashes (and shards) identically; still exact."""
        import repro.core.kernel as kernel_module
        import repro.core.parallel as parallel_module

        real_hash = kernel_module.hash_rows

        def degenerate(packed):
            return np.zeros(packed.shape[0], dtype=np.uint64)

        monkeypatch.setattr(kernel_module, "hash_rows", degenerate)
        monkeypatch.setattr(parallel_module, "hash_rows", degenerate)
        colliding = CascadeSearch(
            library2, kernel="parallel", kernel_options={"shard_bits": 4}
        )
        colliding.extend_to(4)
        monkeypatch.setattr(kernel_module, "hash_rows", real_hash)
        monkeypatch.setattr(parallel_module, "hash_rows", real_hash)
        reference = CascadeSearch(library2, kernel="translate")
        reference.extend_to(4)
        assert colliding.stats().level_sizes == reference.stats().level_sizes
        for cost in range(5):
            assert sorted(p for p, _m in colliding.level(cost)) == sorted(
                p for p, _m in reference.level(cost)
            )

    def test_few_hash_buckets_preserve_order_and_parents(
        self, library2, monkeypatch
    ):
        """A 2-bit hash shards everything into shard 0 and collides
        constantly inside it, yet order and parents match the seed."""
        import repro.core.kernel as kernel_module
        import repro.core.parallel as parallel_module

        real_hash = kernel_module.hash_rows

        def tiny(packed):
            return real_hash(packed) & np.uint64(3)

        monkeypatch.setattr(kernel_module, "hash_rows", tiny)
        monkeypatch.setattr(parallel_module, "hash_rows", tiny)
        colliding = CascadeSearch(
            library2, kernel="parallel", kernel_options={"shard_bits": 6}
        )
        colliding.extend_to(4)
        monkeypatch.setattr(kernel_module, "hash_rows", real_hash)
        monkeypatch.setattr(parallel_module, "hash_rows", real_hash)
        reference = CascadeSearch(library2, kernel="translate")
        reference.extend_to(4)
        _assert_identical(reference, colliding, 4)

    def test_top_bits_only_hash_exercises_cross_shard_spread(
        self, library2, monkeypatch
    ):
        """Hashes differing only in shard bits: every slab sees slot-0
        claim races among all of its candidates (cross-shard protocol)."""
        import repro.core.kernel as kernel_module
        import repro.core.parallel as parallel_module

        real_hash = kernel_module.hash_rows

        def top_heavy(packed):
            return real_hash(packed) & ~np.uint64((1 << 58) - 1)

        monkeypatch.setattr(kernel_module, "hash_rows", top_heavy)
        monkeypatch.setattr(parallel_module, "hash_rows", top_heavy)
        colliding = CascadeSearch(
            library2, kernel="parallel", kernel_options={"shard_bits": 6}
        )
        colliding.extend_to(4)
        monkeypatch.setattr(kernel_module, "hash_rows", real_hash)
        monkeypatch.setattr(parallel_module, "hash_rows", real_hash)
        reference = CascadeSearch(library2, kernel="translate")
        reference.extend_to(4)
        _assert_identical(reference, colliding, 4)


class TestShardedDedupTable:
    def _rows(self, n, words=2, seed=0):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, 2**63, (n, words), dtype=np.uint64)
        return rows, hash_rows(rows.view(np.uint8))

    def test_insert_find_roundtrip(self):
        table = ShardedDedupTable(shard_bits=3)
        rows, hashes = self._rows(500)
        table.insert_distinct(
            hashes, np.arange(1, 501, dtype=np.int32), hashes, 500
        )
        assert table.n_rows == 500
        for i in (0, 123, 499):
            assert table.find(rows[i], hashes[i], rows) == i
        absent, ah = self._rows(1, seed=99)
        assert table.find(absent[0], ah[0], rows) == -1

    def test_dedup_commit_lowest_candidate_wins(self):
        table = ShardedDedupTable(shard_bits=2)
        rows, hashes = self._rows(8)
        # candidates: [A, B, A, C, B, D] -> first occurrence wins
        cand = rows[[0, 1, 0, 2, 1, 3]]
        ch = hashes[[0, 1, 0, 2, 1, 3]]
        new = table.dedup_commit(cand, ch, rows, 0)
        assert new.tolist() == [True, True, False, True, False, True]

    def test_spills_past_budget(self, tmp_path):
        table = ShardedDedupTable(
            shard_bits=2, memory_budget=1 << 12, spill_dir=tmp_path
        )
        rows, hashes = self._rows(4096)
        table.insert_distinct(
            hashes, np.arange(1, 4097, dtype=np.int32), hashes, 4096
        )
        assert table.spilled
        slabs = sorted(p.name for p in tmp_path.glob("shard-*.slab"))
        assert slabs == [f"shard-{s:04d}.slab" for s in range(4)]
        for i in (0, 4095):
            assert table.find(rows[i], hashes[i], rows) == i
        layout = table.layout()
        assert layout["spilled"] and sum(layout["rows_per_shard"]) == 4096

    def test_sweep_uncommitted_restores_checkpoint(self):
        table = ShardedDedupTable(shard_bits=2)
        rows, hashes = self._rows(600)
        table.insert_distinct(
            hashes[:400], np.arange(1, 401, dtype=np.int32), hashes, 400
        )
        # a "crashed" batch: claims + commits past the checkpoint
        new = table.dedup_commit(rows[400:], hashes[400:], rows, 400)
        assert new.all()
        assert table.n_rows == 600
        cleared = table.sweep_uncommitted(400)
        assert cleared == 200
        assert table.n_rows == 400
        assert table.find(rows[0], hashes[0], rows) == 0
        assert table.find(rows[599], hashes[599], rows) == -1
        # the swept batch re-runs to the same result
        again = table.dedup_commit(rows[400:], hashes[400:], rows, 400)
        assert again.all()

    def test_stats_shape(self):
        table = ShardedDedupTable(shard_bits=1)
        stats = table.stats()
        assert [s["shard"] for s in stats] == [0, 1]
        assert all(s["rows"] == 0 and not s["spilled"] for s in stats)

    def test_shard_bits_bounds(self):
        with pytest.raises(InvalidValueError):
            ShardedDedupTable(shard_bits=13)
        with pytest.raises(InvalidValueError):
            ShardedDedupTable(memory_budget=-1)

    def test_parse_budget(self):
        assert parse_budget("4096") == 4096
        assert parse_budget("512M") == 512 << 20
        assert parse_budget("2g") == 2 << 30
        assert parse_budget("1K") == 1024
        with pytest.raises(InvalidValueError):
            parse_budget("lots")
        with pytest.raises(InvalidValueError):
            parse_budget("-1M")

    def test_parse_budget_explicit_binary_suffixes(self):
        assert parse_budget("1KiB") == 1 << 10
        assert parse_budget("3MiB") == 3 << 20
        assert parse_budget("2GiB") == 2 << 30
        assert parse_budget("2gib") == 2 << 30  # case-insensitive

    def test_parse_budget_decimal_suffixes(self):
        # KB/MB/GB are decimal (SI), distinct from bare K/M/G (binary).
        assert parse_budget("512KB") == 512_000
        assert parse_budget("512MB") == 512_000_000
        assert parse_budget("2GB") == 2_000_000_000
        assert parse_budget("512mb") == 512_000_000

    def test_parse_budget_fractional_values(self):
        assert parse_budget("1.5G") == int(1.5 * (1 << 30))
        assert parse_budget("0.5M") == 1 << 19
        assert parse_budget("1.5GB") == 1_500_000_000
        with pytest.raises(InvalidValueError):
            parse_budget("-0.5G")
        with pytest.raises(InvalidValueError):
            parse_budget("1.5.5M")

    def test_shard_of_prefix(self):
        hashes = np.array([0, 1 << 63, (1 << 64) - 1], dtype=np.uint64)
        assert shard_of(hashes, 0).tolist() == [0, 0, 0]
        assert shard_of(hashes, 1).tolist() == [0, 1, 1]
        assert shard_of(hashes, 4).tolist() == [0, 8, 15]


class TestSpilledExpansion:
    def test_tiny_budget_spills_and_stays_exact(self, library3):
        reference = CascadeSearch(library3, kernel="vector")
        reference.extend_to(4)
        budgeted = CascadeSearch(
            library3,
            kernel="parallel",
            kernel_options={"shard_bits": 4, "memory_budget": 1 << 14},
        )
        budgeted.extend_to(4)
        _assert_identical(reference, budgeted, 4)
        assert budgeted.shard_layout()["spilled"]
        budgeted.close()

    def test_shard_layout_reported(self, library3):
        search = CascadeSearch(library3, kernel="parallel")
        search.extend_to(3)
        layout = search.shard_layout()
        assert layout["shard_bits"] == 6
        assert sum(layout["rows_per_shard"]) == search.total_seen()
        assert CascadeSearch(library3, kernel="vector").shard_layout() is None


class TestCheckpointResume:
    def _options(self, directory, **extra):
        options = {"checkpoint_dir": str(directory), "shard_bits": 3}
        options.update(extra)
        return options

    def test_clean_resume_continues_identically(self, library3, tmp_path):
        first = CascadeSearch(
            library3, kernel="parallel",
            kernel_options=self._options(tmp_path),
        )
        first.extend_to(3)
        first.close()
        resumed = CascadeSearch(
            library3, kernel="parallel",
            kernel_options=self._options(tmp_path),
        )
        assert resumed.was_restored and resumed.expanded_to == 3
        resumed.extend_to(5)
        reference = CascadeSearch(library3, kernel="vector")
        reference.extend_to(5)
        _assert_identical(reference, resumed, 5)
        resumed.close()

    def test_crash_mid_level_resumes_cleanly(
        self, library3, tmp_path, monkeypatch
    ):
        """Kill the expansion after dedup mutated the slabs but before
        the level checkpoint: resume must sweep the in-flight claims and
        uncommitted rows and land on the reference closure."""
        first = CascadeSearch(
            library3, kernel="parallel",
            kernel_options=self._options(tmp_path),
        )
        first.extend_to(3)

        real_commit = ShardedExpansion._commit_level

        def crash_after_dedup(self, cand, ch, parents, gates):
            self._dedup_insert(cand, ch)  # slabs now hold claims/commits
            raise RuntimeError("simulated crash mid-level")

        monkeypatch.setattr(
            ShardedExpansion, "_commit_level", crash_after_dedup
        )
        with pytest.raises(RuntimeError, match="simulated crash"):
            first.extend_to(4)
        monkeypatch.setattr(ShardedExpansion, "_commit_level", real_commit)
        del first  # no close(): a crashed process would not clean up

        resumed = CascadeSearch(
            library3, kernel="parallel",
            kernel_options=self._options(tmp_path),
        )
        assert resumed.was_restored and resumed.expanded_to == 3
        resumed.extend_to(5)
        reference = CascadeSearch(library3, kernel="vector")
        reference.extend_to(5)
        _assert_identical(reference, resumed, 5)
        resumed.close()

    def test_corrupted_slab_file_is_rebuilt(self, library3, tmp_path):
        first = CascadeSearch(
            library3, kernel="parallel",
            kernel_options=self._options(tmp_path),
        )
        first.extend_to(3)
        first.close()
        # Scribble over one slab: resume must detect the row-count
        # mismatch and re-derive the shard from the committed rows.
        slab = tmp_path / "slabs" / "shard-0002.slab"
        data = np.memmap(slab, dtype=np.uint64, mode="r+")
        data[:] = np.uint64(0x1234567800000001)
        del data
        resumed = CascadeSearch(
            library3, kernel="parallel",
            kernel_options=self._options(tmp_path),
        )
        assert resumed.expanded_to == 3
        resumed.extend_to(4)
        reference = CascadeSearch(library3, kernel="vector")
        reference.extend_to(4)
        _assert_identical(reference, resumed, 4)
        resumed.close()

    def test_incompatible_checkpoint_is_refused(self, library3, tmp_path):
        first = CascadeSearch(
            library3, kernel="parallel",
            kernel_options=self._options(tmp_path),
        )
        first.extend_to(3)
        first.close()
        other_model = CostModel(v_cost=2, vdag_cost=1, cnot_cost=1)
        fresh = CascadeSearch(
            library3, other_model, kernel="parallel",
            kernel_options=self._options(tmp_path),
        )
        assert not fresh.was_restored and fresh.expanded_to == 0
        fresh.extend_to(3)
        reference = CascadeSearch(
            library3, other_model, kernel="translate"
        )
        reference.extend_to(3)
        _assert_identical(reference, fresh, 3)
        fresh.close()

    def test_extend_over_crashed_checkpoint_is_exact(
        self, library3, tmp_path, monkeypatch
    ):
        """A store-loaded search extended with a crashed run's
        checkpoint dir must not trust the stale slabs: the replayed
        closure discards them, or in-flight claims would swallow
        genuine first producers (regression: silently empty levels)."""
        from repro.core.store import dump_search, loads_search

        first = CascadeSearch(
            library3, kernel="parallel",
            kernel_options=self._options(tmp_path),
        )
        first.extend_to(3)
        blob = dump_search(first)
        real_commit = ShardedExpansion._commit_level

        def crash_after_dedup(self, cand, ch, parents, gates):
            self._dedup_insert(cand, ch)
            raise RuntimeError("simulated crash mid-level")

        monkeypatch.setattr(
            ShardedExpansion, "_commit_level", crash_after_dedup
        )
        with pytest.raises(RuntimeError):
            first.extend_to(4)
        monkeypatch.setattr(ShardedExpansion, "_commit_level", real_commit)
        del first

        # the precompute --extend path: load the store, point the
        # parallel kernel at the crashed checkpoint dir, deepen
        restored = loads_search(blob, library3)
        restored.use_kernel("parallel", self._options(tmp_path))
        restored.extend_to(4)
        reference = CascadeSearch(library3, kernel="vector")
        reference.extend_to(4)
        _assert_identical(reference, restored, 4)
        restored.close()

    def test_manifest_records_identity(self, library3, tmp_path):
        search = CascadeSearch(
            library3, kernel="parallel",
            kernel_options=self._options(tmp_path),
        )
        search.extend_to(2)
        search.close()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["degree"] == 38
        assert manifest["shard_bits"] == 3
        assert manifest["level_offsets"] == [0, 1, 19, 181]
        assert len(manifest["library_fingerprint"]) == 64


class TestRelationFilter:
    def test_permuted_masks_match_composition(self, library3):
        """perm_g(mask(a)) must equal the mask of t_g . a exactly."""
        search = CascadeSearch(library3, kernel="parallel")
        search.extend_to(3)
        engine = search._engine
        rf = engine._filter
        perms = engine.level_perms_raw(3)
        masks = engine.level_masks[3]
        tables = engine.gate_rows.tables
        for gi in (0, 7, 17):
            table = np.frombuffer(tables[gi], dtype=np.uint8)
            composed = pack_rows(table[perms], engine.degree)
            expected = compute_masks(composed, engine.n_binary, 1)
            gates = np.full(perms.shape[0], gi, dtype=np.int64)
            got = rf.permuted_masks(masks, gates)
            assert (got == expected).all()

    def test_filter_prunes_only_duplicates(self, library3):
        """The filtered engine visits fewer candidates yet commits the
        same rows -- the pruned mass was pure duplicates."""
        counted = {}

        class Counting(ShardedExpansion):
            def _generate_candidates(self, chunks, total):
                counted[self.n_levels] = total
                return super()._generate_candidates(chunks, total)

        filtered = Counting(
            38, 8, CascadeSearch(library3, kernel="parallel")._engine.gate_rows
        )
        filtered.seed_identity()
        plain = Counting(
            38, 8,
            CascadeSearch(library3, kernel="parallel")._engine.gate_rows,
            relation_filter=False,
        )
        plain.seed_identity()
        totals_filtered = {}
        for cost in range(1, 5):
            filtered.expand_level(cost)
            totals_filtered[cost] = counted[cost]
        counted.clear()
        for cost in range(1, 5):
            plain.expand_level(cost)
        assert filtered.n_rows == plain.n_rows
        assert filtered.offsets == plain.offsets
        assert all(
            totals_filtered[c] < counted[c] for c in range(2, 5)
        ), (totals_filtered, counted)

    def test_relations_found_for_paper_library(self, library3):
        search = CascadeSearch(library3, kernel="parallel")
        rf = search._engine._filter
        assert rf is not None and rf.active
        # The paper's library commutes across disjoint wire pairs, and
        # every gate has its adjoint in the alphabet (identity pairs).
        # Note V^2 = CNOT holds only on the binary sublabels, not on
        # the full 38-label space, so no single-gate relations exist.
        assert rf._pair_q2 and rf._uncond.any()
        assert not rf._singles


class TestSyntheticSingleRelations:
    """A toy alphabet where a two-gate product equals a cheaper gate.

    The paper's library has no such relation on the full label space,
    so this pins the filter's 'single' rule directly: shift1 . shift1 =
    shift2 with cost(shift2) = 1 < 2, and the engines must stay
    byte-identical with the rule firing.
    """

    def _gate_rows(self):
        from repro.core.kernel import GateRows

        degree = 8

        def shift_table(k):
            table = bytearray(range(256))
            for i in range(degree):
                table[i] = (i + k) % degree
            return bytes(table)

        # gates: shift1, shift2, shift6 (= shift2^-1 . shift... no --
        # inverse of shift2), shift7 (= inverse of shift1)
        tables = [shift_table(1), shift_table(2), shift_table(6),
                  shift_table(7)]
        return GateRows(
            tables,
            banned_masks=[0, 0, 0, 0],
            costs=[1, 1, 1, 1],
            inverse=[3, 2, 1, 0],
            mask_words=1,
        ), degree

    def test_single_rule_is_detected_and_exact(self):
        gate_rows, degree = self._gate_rows()
        rf = RelationFilter(gate_rows, degree, 1)
        assert rf._singles, "shift1.shift1 = shift2 should register"
        filtered = ShardedExpansion(degree, 2, gate_rows, shard_bits=2)
        filtered.seed_identity()
        plain = ShardedExpansion(
            degree, 2, gate_rows, shard_bits=2, relation_filter=False
        )
        plain.seed_identity()
        from repro.core.kernel import VectorEngine

        reference = VectorEngine(degree, 2, gate_rows)
        reference.seed_identity()
        for cost in range(1, 6):
            filtered.expand_level(cost)
            plain.expand_level(cost)
            reference.expand_level(cost)
        # the cyclic group C8: closure saturates at 8 rows
        assert filtered.n_rows == plain.n_rows == reference.n_rows == 8
        assert filtered.offsets == reference.offsets
        assert (
            filtered.all_perms_raw() == reference.all_perms_raw()
        ).all()
        for cost in range(reference.n_levels):
            assert (
                filtered.level_parents[cost]
                == reference.level_parents[cost]
            ).all()
            assert (
                filtered.level_gates[cost] == reference.level_gates[cost]
            ).all()


class TestServingIntegration:
    def test_freeze_releases_workers(self, library3):
        search = CascadeSearch(
            library3, kernel="parallel", kernel_options={"jobs": 2}
        )
        search.extend_to(5)
        assert search._engine._pool is not None
        search.freeze()
        assert search._engine._pool is None
        # row lookups still work after the pool is gone
        perm, _mask = search.level(3)[5]
        assert search.cost_of(perm) == 3
        search.close()

    def test_batch_synthesizer_over_parallel_closure(self, library3):
        from repro.core.batch import BatchSynthesizer
        from repro.gates import named

        search = CascadeSearch(library3, kernel="parallel")
        batch = BatchSynthesizer(search, cost_bound=5).warm()
        result = batch.synthesize(named.TARGETS["toffoli"])
        assert result.cost == 5
        reference = BatchSynthesizer(
            CascadeSearch(library3, kernel="vector"), cost_bound=5
        ).synthesize(named.TARGETS["toffoli"])
        assert str(result.circuit) == str(reference.circuit)
