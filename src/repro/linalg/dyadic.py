"""Exact dyadic Gaussian complex numbers: (a + b*i) / 2**k.

The set of such numbers is a subring of the complex numbers that is closed
under addition, subtraction and multiplication, and contains every entry
of every matrix in the paper (V and V+ have entries (1 +/- i)/2; NOT,
CNOT and identities are integer matrices; tensor products and finite
cascades stay in the ring).  Division is only needed by 2 (never by a
general element), so the ring suffices for exact verification.

Instances are immutable, hashable and normalized (``k`` minimal, and
``k == 0`` whenever both numerators are even or zero).
"""

from __future__ import annotations

from typing import Union

Number = Union[int, "DyadicComplex"]


class DyadicComplex:
    """An exact complex number of the form (a + b*i) / 2**k.

    Args:
        real_num: integer numerator of the real part.
        imag_num: integer numerator of the imaginary part.
        exponent: non-negative power of two in the denominator.

    The constructor normalizes, so two equal values always compare and
    hash identically.
    """

    __slots__ = ("_a", "_b", "_k")

    def __init__(self, real_num: int = 0, imag_num: int = 0, exponent: int = 0):
        if exponent < 0:
            # A negative exponent is a multiplier: fold it into numerators.
            real_num <<= -exponent
            imag_num <<= -exponent
            exponent = 0
        while exponent > 0 and real_num % 2 == 0 and imag_num % 2 == 0:
            real_num //= 2
            imag_num //= 2
            exponent -= 1
        self._a = real_num
        self._b = imag_num
        self._k = exponent

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_int(cls, value: int) -> "DyadicComplex":
        """Embed an integer."""
        return cls(value, 0, 0)

    @classmethod
    def i(cls) -> "DyadicComplex":
        """The imaginary unit."""
        return cls(0, 1, 0)

    @classmethod
    def half(cls, real_num: int, imag_num: int) -> "DyadicComplex":
        """Shortcut for (a + b*i)/2 -- the V-matrix entry form."""
        return cls(real_num, imag_num, 1)

    # -- accessors -----------------------------------------------------------

    @property
    def real_numerator(self) -> int:
        return self._a

    @property
    def imag_numerator(self) -> int:
        return self._b

    @property
    def exponent(self) -> int:
        return self._k

    @property
    def is_zero(self) -> bool:
        return self._a == 0 and self._b == 0

    @property
    def is_one(self) -> bool:
        return self._a == 1 and self._b == 0 and self._k == 0

    @property
    def is_real(self) -> bool:
        return self._b == 0

    # -- ring operations -------------------------------------------------------

    def _coerce(self, other: Number) -> "DyadicComplex":
        if isinstance(other, DyadicComplex):
            return other
        if isinstance(other, int):
            return DyadicComplex(other, 0, 0)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: Number) -> "DyadicComplex":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        k = max(self._k, rhs._k)
        scale_l = 1 << (k - self._k)
        scale_r = 1 << (k - rhs._k)
        return DyadicComplex(
            self._a * scale_l + rhs._a * scale_r,
            self._b * scale_l + rhs._b * scale_r,
            k,
        )

    __radd__ = __add__

    def __neg__(self) -> "DyadicComplex":
        return DyadicComplex(-self._a, -self._b, self._k)

    def __sub__(self, other: Number) -> "DyadicComplex":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self + (-rhs)

    def __rsub__(self, other: Number) -> "DyadicComplex":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return rhs + (-self)

    def __mul__(self, other: Number) -> "DyadicComplex":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return DyadicComplex(
            self._a * rhs._a - self._b * rhs._b,
            self._a * rhs._b + self._b * rhs._a,
            self._k + rhs._k,
        )

    __rmul__ = __mul__

    def conjugate(self) -> "DyadicComplex":
        """Complex conjugate."""
        return DyadicComplex(self._a, -self._b, self._k)

    def abs_squared(self) -> "DyadicComplex":
        """|z|**2 as an exact (real) dyadic number."""
        return self * self.conjugate()

    def halve(self) -> "DyadicComplex":
        """Exact division by 2."""
        return DyadicComplex(self._a, self._b, self._k + 1)

    # -- comparisons / hashing ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = DyadicComplex(other, 0, 0)
        if not isinstance(other, DyadicComplex):
            return NotImplemented
        return (
            self._a == other._a and self._b == other._b and self._k == other._k
        )

    def __hash__(self) -> int:
        return hash((self._a, self._b, self._k))

    # -- conversions --------------------------------------------------------------

    def to_complex(self) -> complex:
        """Convert to a built-in complex (exact for moderate exponents)."""
        denom = float(1 << self._k)
        return complex(self._a / denom, self._b / denom)

    def __complex__(self) -> complex:
        return self.to_complex()

    def __repr__(self) -> str:
        return f"DyadicComplex({self._a}, {self._b}, {self._k})"

    def __str__(self) -> str:
        if self.is_zero:
            return "0"
        denom = 1 << self._k
        parts = []
        if self._a:
            parts.append(f"{self._a}" if denom == 1 else f"{self._a}/{denom}")
        if self._b:
            sign = "+" if self._b > 0 and parts else ""
            mag = f"{self._b}" if denom == 1 else f"{self._b}/{denom}"
            parts.append(f"{sign}{mag}i")
        return "".join(parts)


ZERO = DyadicComplex(0)
ONE = DyadicComplex(1)
I_UNIT = DyadicComplex(0, 1)
