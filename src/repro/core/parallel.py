"""Parallel sharded expansion engine: multi-worker closure precompute.

The vector kernel (:mod:`repro.core.kernel`) is single-threaded and its
dedup table must fit in RAM; per-gate candidate generation, however, is
embarrassingly parallel, and the dedup keyspace splits cleanly by hash
prefix.  :class:`ShardedExpansion` is the coordinator that exploits
both:

* **Relation filter.**  Before composing anything, a precomputed table
  of length-:math:`\\le 2` gate relations (commutations, two-gate
  products that equal a cheaper gate, inverse pairs) drops candidates
  that some *earlier* candidate -- earlier level, or same level and a
  smaller library-gate index -- is guaranteed to have produced.  On the
  paper's 3-qubit library this removes ~75% of the duplicate candidate
  mass at the deep levels without touching a single row byte, and it
  provably cannot change results (see :class:`RelationFilter`).
* **Worker pool.**  Surviving ``(gate, source row)`` pairs fan out to a
  ``multiprocessing`` pool: the coordinator lays source-level rows and
  kept-index arrays into a shared scratch mapping, workers reuse the
  vector kernel's uint16 pair-table composition + row hashing on their
  assigned slices, writing candidates into disjoint ranges of a shared
  output mapping.  Output positions are fixed by the plan, so the
  candidate array is byte-identical to the sequential one no matter how
  slices interleave.
* **Sharded dedup.**  Candidates then merge through a
  :class:`~repro.core.dedup.ShardedDedupTable` -- per-shard
  open-addressing slabs that spill to ``np.memmap`` files past a memory
  budget -- with claim races resolved to the lowest candidate id, i.e.
  the sequential tie-break key.  Accepted rows are committed in
  candidate order.

Determinism contract
--------------------

For any library and cost model, ``CascadeSearch(kernel="parallel")``
produces levels **byte-identical in content and order** (and parent
pointers) to both the vector and translate kernels, for every value of
``jobs``, ``shard_bits`` and memory budget.  The three mechanisms above
each preserve it independently; ``tests/test_parallel.py`` pins the
equivalence, forced hash collisions and claim races included.

Checkpoint / crash recovery
---------------------------

With a ``checkpoint_dir`` the engine becomes restartable: completed
levels are persisted (``level-NNNN.npz``), dedup slabs live as memmap
files under ``slabs/``, and a manifest is atomically rewritten after
every level.  A crash mid-level leaves in-flight claims and
yet-uncommitted rows in the slabs; on resume they are swept back to the
last checkpoint (:meth:`ShardedDedupTable.sweep_uncommitted`) and the
expansion continues -- producing the same closure as an uninterrupted
run.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.errors import InvalidValueError
from repro.core.dedup import ShardedDedupTable, shard_of
from repro.core.kernel import (
    GateRows,
    VectorEngine,
    hash_rows,
    pack_rows,
)

#: Below this many planned candidates a level is expanded inline even
#: when a worker pool is configured (IPC would dominate).
PARALLEL_MIN_CANDIDATES = 4096

#: Manifest schema version of a checkpoint directory.
CHECKPOINT_FORMAT = 1


# -- relation filter -------------------------------------------------------------------


class RelationFilter:
    """Pre-composition pruning from length-:math:`\\le 2` gate relations.

    For a candidate ``t_g . p`` where row ``p`` was created by appending
    gate ``q`` to parent ``a`` (so the candidate's image is
    ``t_g . t_q . a``), the filter may drop the candidate when one of
    these holds:

    * **identity** -- ``t_g . t_q = e``: the image *is* ``a``,
      discovered two levels down (subsumes the kernel's inverse
      back-edge filter, and also fires when the inverse permutation
      hides under a different gate name).
    * **single** -- ``t_g . t_q = t_h`` with ``cost(h) < cost(q) +
      cost(g)`` (or equal cost and ``h < g``), and ``h`` applicable to
      ``a`` (``mask(a) & banned(h) == 0``): candidate ``(a, h)``
      produced the image at an earlier level (or earlier chunk of the
      same level).
    * **pair** -- ``t_g . t_q = t_{g2} . t_{q2}`` with ``cost(q2) +
      cost(g2)`` smaller (any ``g2``) or equal and ``g2 < g``, with
      both steps applicable: ``mask(a) & banned(q2) == 0`` and
      ``perm_mask(q2, mask(a)) & banned(g2) == 0``.  Then
      ``r = t_{q2} . a`` is discovered no later than
      ``cost(a) + cost(q2)`` and candidate ``(r, g2)`` precedes ours.

    Why this is exact: every skipped candidate names a witness
    candidate strictly earlier in the (level, gate-chunk) enumeration
    that yields the same image.  The witness may itself have been
    skipped, but each skip steps strictly down a well-founded order, so
    a chain of witnesses always terminates at a non-skipped earlier
    producer.  First producers therefore are never skipped, and level
    contents, discovery order and parent choice all survive untouched.
    Rows with unknown provenance (restored levels carrying ``-1``
    parent or gate entries) are never filtered.

    ``perm_mask(q, m)`` is the S-image mask ``m`` pushed through gate
    ``q``'s label permutation; it is evaluated via per-gate, per-byte
    lookup tables so the filter never composes a full row.
    """

    def __init__(self, gate_rows: GateRows, degree: int, mask_words: int):
        self._n_g = n_g = len(gate_rows)
        self._words = mask_words
        self._nbytes = nbytes = -(-degree // 8)
        tables = [
            np.frombuffer(t, dtype=np.uint8) for t in gate_rows.tables
        ]
        costs = gate_rows.costs
        banned = gate_rows.banned  # per gate: (words,) u64

        identity = np.arange(256, dtype=np.uint8)
        products: dict[bytes, list[tuple[int, int]]] = {}
        for q in range(n_g):
            for g in range(n_g):
                key = tables[g][tables[q]][:degree].tobytes()
                products.setdefault(key, []).append((q, g))
        by_single = {
            t[:degree].tobytes(): h for h, t in enumerate(tables)
        }
        identity_key = identity[:degree].tobytes()

        #: uncond[g][q] -- skip unconditionally (product is identity).
        self._uncond = np.zeros((n_g, n_g), dtype=bool)
        # singles[k] and pair_*[k] are per-alternative sentinel-padded
        # lookup arrays indexed [g][q]; all-ones banned sentinels make
        # the corresponding condition unsatisfiable (S-masks are
        # nonzero), so unused slots are naturally inert.
        ones = np.uint64(0xFFFFFFFFFFFFFFFF)
        singles: list[np.ndarray] = []
        pair_q2: list[np.ndarray] = []
        pair_b1: list[np.ndarray] = []
        pair_b2: list[np.ndarray] = []
        single_used: list[np.ndarray] = []
        pair_used: list[np.ndarray] = []

        def _place_single(g, q, banned_h):
            for k, used in enumerate(single_used):
                if not used[g, q]:
                    singles[k][g, q] = banned_h
                    used[g, q] = True
                    return
            singles.append(
                np.full((n_g, n_g, mask_words), ones, dtype=np.uint64)
            )
            single_used.append(np.zeros((n_g, n_g), dtype=bool))
            singles[-1][g, q] = banned_h
            single_used[-1][g, q] = True

        def _place_pair(g, q, q2, b1, b2):
            for k, used in enumerate(pair_used):
                if not used[g, q]:
                    pair_q2[k][g, q] = q2
                    pair_b1[k][g, q] = b1
                    pair_b2[k][g, q] = b2
                    used[g, q] = True
                    return
            pair_q2.append(np.zeros((n_g, n_g), dtype=np.int64))
            pair_b1.append(
                np.full((n_g, n_g, mask_words), ones, dtype=np.uint64)
            )
            pair_b2.append(
                np.full((n_g, n_g, mask_words), ones, dtype=np.uint64)
            )
            pair_used.append(np.zeros((n_g, n_g), dtype=bool))
            pair_q2[-1][g, q] = q2
            pair_b1[-1][g, q] = b1
            pair_b2[-1][g, q] = b2
            pair_used[-1][g, q] = True

        for key, members in products.items():
            is_identity = key == identity_key
            single_h = by_single.get(key)
            for q, g in members:
                total = costs[q] + costs[g]
                if is_identity:
                    self._uncond[g, q] = True
                    continue
                if single_h is not None and (
                    costs[single_h] < total
                    or (costs[single_h] == total and single_h < g)
                ):
                    _place_single(g, q, banned[single_h])
                for q2, g2 in members:
                    if (q2, g2) == (q, g):
                        continue
                    total2 = costs[q2] + costs[g2]
                    if total2 < total or (total2 == total and g2 < g):
                        _place_pair(g, q, q2, banned[q2], banned[g2])
        self._singles = singles
        self._pair_q2 = pair_q2
        self._pair_b1 = pair_b1
        self._pair_b2 = pair_b2
        # any_alt[g][q]: does (q, g) have any alternative at all?  One
        # gather against it narrows condition evaluation to the ~25% of
        # pairs that can fire.
        self._any_alt = self._uncond.copy()
        for used in single_used:
            self._any_alt |= used
        for used in pair_used:
            self._any_alt |= used
        self._active = bool(self._any_alt.any())

        # Per-gate byte-wise mask-permutation tables:
        # _ptab[(g * nbytes + b) * 256 + v] = OR of one-hot(t_g[8b + j])
        # over the bits j set in v (labels 8b + j < degree only).
        ptab = np.zeros((n_g * nbytes * 256, mask_words), dtype=np.uint64)
        vals = np.arange(256)
        for g in range(n_g):
            t = tables[g]
            for b in range(nbytes):
                base = (g * nbytes + b) * 256
                for j in range(8):
                    label = 8 * b + j
                    if label >= degree:
                        break
                    image = int(t[label])
                    sel = (vals >> j) & 1 == 1
                    ptab[base + vals[sel], image >> 6] |= np.uint64(
                        1
                    ) << np.uint64(image & 63)
        self._ptab = ptab if mask_words > 1 else ptab[:, 0]

    # -- evaluation --------------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether any relation exists for this library at all."""
        return self._active

    def permuted_masks(self, masks: np.ndarray, gates: np.ndarray) -> np.ndarray:
        """Push S-image masks through per-row gate label permutations."""
        n = masks.shape[0]
        if self._words == 1:
            m = masks.reshape(n)
            out = np.zeros(n, dtype=np.uint64)
            base = (gates.astype(np.int64) * self._nbytes) * 256
            for b in range(self._nbytes):
                byte = ((m >> np.uint64(8 * b)) & np.uint64(0xFF)).astype(
                    np.int64
                )
                out |= self._ptab[base + b * 256 + byte]
            return out.reshape(n, 1)
        bytes_view = masks.view(np.uint8).reshape(n, 8 * self._words)
        out = np.zeros((n, self._words), dtype=np.uint64)
        base = (gates.astype(np.int64) * self._nbytes) * 256
        for b in range(self._nbytes):
            idx = base + b * 256 + bytes_view[:, b].astype(np.int64)
            out |= self._ptab[idx]
        return out

    def prune(
        self, gi: int, qs: np.ndarray, pmasks: np.ndarray
    ) -> np.ndarray:
        """Skip mask for candidates extending gate-``qs`` rows by ``gi``.

        ``pmasks`` holds the (grand)parent S-image masks, ``(m, words)``.
        """
        qsl = qs.astype(np.int64)
        interesting = np.flatnonzero(self._any_alt[gi][qsl])
        if interesting.size < qsl.shape[0]:
            # Evaluate conditions only where an alternative exists.
            sub = self.prune(
                gi, qs[interesting], pmasks[interesting]
            )
            skip = np.zeros(qsl.shape[0], dtype=bool)
            skip[interesting[sub]] = True
            return skip
        m = qs.shape[0]
        skip = self._uncond[gi][qsl].copy()
        if self._words == 1:
            pm = pmasks.reshape(m)
            for arr in self._singles:
                skip |= (pm & arr[gi, :, 0][qsl]) == 0
            for k in range(len(self._pair_q2)):
                b1 = self._pair_b1[k][gi, :, 0][qsl]
                cond1 = ~skip & ((pm & b1) == 0)
                need = np.flatnonzero(cond1)
                if not need.size:
                    continue
                q2 = self._pair_q2[k][gi][qsl[need]]
                m2 = self.permuted_masks(
                    pm[need].reshape(-1, 1), q2
                ).reshape(-1)
                b2 = self._pair_b2[k][gi, :, 0][qsl[need]]
                hit = (m2 & b2) == 0
                skip[need[hit]] = True
            return skip
        for arr in self._singles:
            skip |= ((pmasks & arr[gi][qsl]) == 0).all(axis=1)
        for k in range(len(self._pair_q2)):
            b1 = self._pair_b1[k][gi][qsl]
            cond1 = ~skip & ((pmasks & b1) == 0).all(axis=1)
            need = np.flatnonzero(cond1)
            if not need.size:
                continue
            q2 = self._pair_q2[k][gi][qsl[need]]
            m2 = self.permuted_masks(pmasks[need], q2)
            b2 = self._pair_b2[k][gi][qsl[need]]
            hit = ((m2 & b2) == 0).all(axis=1)
            skip[need[hit]] = True
        return skip


# -- worker pool -----------------------------------------------------------------------
#
# Workers are plain processes; the only state they carry is the per-gate
# pair tables (shipped once through the pool initializer).  Level data
# travels through file-backed scratch mappings: the coordinator lays the
# needed source rows and kept-index arrays into ``in.buf``, workers
# compose + hash their slices into disjoint ranges of ``out.buf``.
# File-backed ``np.memmap`` (page-cache shared, path-addressable) is
# deliberately chosen over ``multiprocessing.shared_memory``: it is
# picklable as a path, start-method agnostic, and leaves no tracker
# residue if a worker dies.

_WORKER_TABLES: list[np.ndarray] | None = None


def _init_worker(table_blobs: list[bytes]) -> None:
    global _WORKER_TABLES
    _WORKER_TABLES = [
        np.frombuffer(blob, dtype=np.uint16) for blob in table_blobs
    ]


def _compose_task(task: tuple) -> None:
    """Compose + hash one slice of one (gate, source-level) chunk.

    ``task`` is ``(in_path, out_path, width, n_src_rows, kept_offset,
    total, gi, k0, k1, out_pos)``: rows ``kept[k0:k1]`` of the source
    block are composed through gate ``gi``'s pair table into candidate
    rows ``out_pos..`` and their hashes.
    """
    (
        in_path, out_path, width, n_src_rows, kept_offset,
        total, gi, k0, k1, out_pos,
    ) = task
    m = k1 - k0
    buf_in = np.memmap(in_path, dtype=np.uint8, mode="r")
    src16 = buf_in[: n_src_rows * width].reshape(n_src_rows, width).view(
        np.uint16
    )
    kept = buf_in[kept_offset:].view(np.int64)[k0:k1]
    buf_out = np.memmap(out_path, dtype=np.uint8, mode="r+")
    cand = buf_out[: total * width].reshape(total, width)
    hash_off = total * width + (-(total * width)) % 8
    hashes = buf_out[hash_off : hash_off + total * 8].view(np.uint64)
    block = cand[out_pos : out_pos + m]
    np.take(
        _WORKER_TABLES[gi],
        np.take(src16, kept, axis=0),
        out=block.view(np.uint16),
        mode="clip",
    )
    hashes[out_pos : out_pos + m] = hash_rows(block)
    # No flush: the mappings are MAP_SHARED, so the coordinator reads
    # the same page-cache pages; msync here would force synchronous
    # writeback of the whole output region to disk.


# -- checkpointing ---------------------------------------------------------------------


class ExpansionCheckpoint:
    """Per-level persistence of an expansion under one directory.

    Layout::

        <dir>/manifest.json      atomically replaced after every level
        <dir>/level-NNNN.npz     perms/masks/parents/gates of level N
        <dir>/slabs/shard-*.slab the live (memmapped) dedup slabs

    The manifest records the identity of the computation (library and
    cost-model fingerprints, degree, shard bits, parent tracking) plus
    the committed state (level offsets, per-shard slab sizes), so a
    resume can refuse a directory written for a different search.
    """

    def __init__(self, directory: str | Path, provenance: dict | None = None):
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.provenance = dict(provenance or {})

    @property
    def manifest_path(self) -> Path:
        return self.dir / "manifest.json"

    @property
    def slab_dir(self) -> Path:
        return self.dir / "slabs"

    def level_path(self, level: int) -> Path:
        return self.dir / f"level-{level:04d}.npz"

    def load_manifest(self) -> dict | None:
        try:
            return json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return None

    def compatible(self, manifest: dict, identity: dict) -> bool:
        """Whether a manifest matches this computation's identity."""
        if manifest.get("format") != CHECKPOINT_FORMAT:
            return False
        return all(manifest.get(k) == v for k, v in identity.items())

    def write_manifest(self, manifest: dict) -> None:
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=1) + "\n")
        os.replace(tmp, self.manifest_path)

    def write_level(
        self,
        level: int,
        perms: np.ndarray,
        masks: np.ndarray,
        parents: np.ndarray,
        gates: np.ndarray,
    ) -> None:
        path = self.level_path(level)
        tmp = path.with_suffix(".npz.tmp")
        with open(tmp, "wb") as handle:
            np.savez(
                handle, perms=perms, masks=masks, parents=parents, gates=gates
            )
        os.replace(tmp, path)

    def read_level(self, level: int) -> dict[str, np.ndarray]:
        with np.load(self.level_path(level)) as data:
            return {name: np.array(data[name]) for name in data.files}


# -- the coordinator -------------------------------------------------------------------


class ShardedExpansion(VectorEngine):
    """Sharded, optionally multi-process closure-expansion engine.

    A drop-in :class:`~repro.core.kernel.VectorEngine` replacement (all
    row-store accessors are inherited) whose expansion pipeline runs
    through the relation filter, an optional worker pool, and a
    :class:`~repro.core.dedup.ShardedDedupTable`.

    Saving an expansion this engine produced goes through the streamed
    store writers (:func:`~repro.core.store.save_search`): both the
    memory-mapped v2 layout and the chunk-compressed v3 layout are
    emitted level by level straight off the inherited row store, so
    writing never materializes a second copy of the closure -- the
    property that lets a budgeted run save a store larger than the
    dedup table's RAM cap.

    Args:
        jobs: worker processes for candidate generation (1 = inline;
            levels below :data:`PARALLEL_MIN_CANDIDATES` candidates are
            always expanded inline).
        shard_bits: dedup keyspace is range-sharded into
            ``2**shard_bits`` hash-prefix shards.
        memory_budget: soft RAM cap (bytes) for dedup slabs; past it,
            slabs spill to memmap files.
        checkpoint_dir: persist completed levels + slabs here and resume
            from them (see :class:`ExpansionCheckpoint`).
        relation_filter: disable to skip the pre-composition pruning
            (the dedup table then sees every candidate; results are
            identical either way).
        provenance: identity payload pinned into the checkpoint
            manifest (library/cost fingerprints).
    """

    def __init__(
        self,
        degree: int,
        n_binary: int,
        gate_rows: GateRows,
        track_parents: bool = True,
        *,
        jobs: int = 1,
        shard_bits: int = 6,
        memory_budget: int | None = None,
        checkpoint_dir: str | Path | None = None,
        relation_filter: bool = True,
        provenance: dict | None = None,
    ):
        super().__init__(degree, n_binary, gate_rows, track_parents)
        self.jobs = max(1, int(jobs))
        self._checkpoint = (
            ExpansionCheckpoint(checkpoint_dir, provenance)
            if checkpoint_dir is not None
            else None
        )
        self._table = ShardedDedupTable(
            shard_bits=shard_bits,
            memory_budget=memory_budget,
            spill_dir=(
                self._checkpoint.slab_dir if self._checkpoint else None
            ),
            persistent=self._checkpoint is not None,
        )
        self._filter = (
            RelationFilter(gate_rows, degree, self.mask_words)
            if relation_filter
            else None
        )
        if self._filter is not None and not self._filter.active:
            self._filter = None
        # Global S-image masks, grown in row order (parent-mask lookups
        # for the relation filter gather straight from it).
        self._gmasks = np.empty((1024, self.mask_words), dtype=np.uint64)
        self._gmask_rows = 0
        self._pool = None
        self._scratch_dir: Path | None = None
        self._cand_buf = None
        self._hash_buf = None
        self._meta_buf = None
        self._closed = False

    # -- dedup-table plumbing (overrides of the kernel's in-memory table) --------------

    def _ensure_capacity(self, total_rows: int) -> None:
        pass  # the sharded table sizes itself per batch

    def _insert_distinct(self, hashes, rows) -> None:
        self._table.insert_distinct(hashes, rows, self._hashes, self.n_rows)

    def _dedup_insert(self, cand, ch):
        self._table.reserve(ch, self._hashes, self.n_rows)
        return self._table.dedup_commit(
            cand.view(np.uint64), ch, self._perms.view(np.uint64), self.n_rows
        )

    def _scalar_insert(self, *args, **kwargs):  # pragma: no cover
        raise InvalidValueError(
            "scalar inserts route through the sharded dedup table"
        )

    def find_row(self, images: bytes) -> int:
        row = np.frombuffer(images, dtype=np.uint8)[None, :]
        packed = pack_rows(row, self.degree)
        h = hash_rows(packed)[0]
        return self._table.find(
            packed.view(np.uint64)[0], h, self._perms.view(np.uint64)
        )

    @property
    def dedup_table(self) -> ShardedDedupTable:
        return self._table

    def dedup_stats(self) -> dict:
        layout = self._table.layout()
        stats = {
            "dedup_slots": int(
                self._table.n_shards * layout["slab_slots"]
            ),
            "dedup_used": int(self.n_rows),
        }
        if layout["spilled"]:
            stats["dedup_spilled"] = True
        return stats

    # -- relation filter ---------------------------------------------------------------

    def _wants_parents(self) -> bool:
        # The filter needs parent rows even on counting-only runs; the
        # export layer still honours track_parents.
        return self.track_parents or self._filter is not None

    def _sync_gmasks(self) -> None:
        if self._gmask_rows == self.n_rows:
            return
        need = self.n_rows
        cap = self._gmasks.shape[0]
        if need > cap:
            while cap < need:
                cap *= 2
            grown = np.empty((cap, self.mask_words), dtype=np.uint64)
            grown[: self._gmask_rows] = self._gmasks[: self._gmask_rows]
            self._gmasks = grown
        pos = self._gmask_rows
        for level in range(self.n_levels):
            size = self.level_size(level)
            start = self.offsets[level]
            if start + size <= pos:
                continue
            masks = self.level_masks[level]
            lo = pos - start
            self._gmasks[start + lo : start + size] = masks[lo:]
            pos = start + size
        self._gmask_rows = need

    def _filter_candidates(self, src, gi, kept):
        if self._filter is None:
            return kept
        parents = self.level_parents[src]
        if parents.shape[0] != self.level_size(src):
            return kept  # restored level without provenance
        self._sync_gmasks()
        qs = self.level_gates[src][kept]
        prs = parents[kept]
        valid = (qs >= 0) & (prs >= 0)
        if not valid.any():
            return kept
        vi = np.flatnonzero(valid)
        skip_valid = self._filter.prune(
            gi, qs[vi], self._gmasks[prs[vi]]
        )
        if not skip_valid.any():
            return kept
        drop = np.zeros(kept.shape[0], dtype=bool)
        drop[vi] = skip_valid
        return kept[~drop]

    def _commit_level(self, cand, ch, parents, gates) -> int:
        """Commit, deriving accepted-row masks from their parents.

        ``mask(t_g . a) = perm_g(mask(a))`` -- pushing the parent's
        S-image mask through the appended gate's byte tables is cheaper
        than recomputing masks from the row images, and exactly equal.
        """
        if self._filter is None or parents is None:
            return super()._commit_level(cand, ch, parents, gates)
        new_mask = self._dedup_insert(cand, ch)
        accepted = np.flatnonzero(new_mask)
        n_new = accepted.size
        self._grow_rows(n_new)
        start = self.n_rows
        np.take(cand, accepted, axis=0, out=self._perms[start : start + n_new])
        np.take(ch, accepted, out=self._hashes[start : start + n_new])
        acc_parents = parents[accepted]
        acc_gates = gates[accepted]
        self._sync_gmasks()  # parents precede this level: all synced
        masks = self._filter.permuted_masks(
            self._gmasks[acc_parents], acc_gates
        )
        self.n_rows += n_new
        self.offsets.append(self.n_rows)
        self.level_masks.append(masks)
        self.level_parents.append(acc_parents)
        self.level_gates.append(acc_gates)
        return int(n_new)

    # -- parallel candidate generation -------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing as mp

            methods = mp.get_all_start_methods()
            ctx = mp.get_context("fork" if "fork" in methods else "spawn")
            blobs = [t.tobytes() for t in self.gate_rows.tables16]
            self._pool = ctx.Pool(
                self.jobs, initializer=_init_worker, initargs=(blobs,)
            )
        return self._pool

    def _scratch(self, name: str, size: int) -> Path:
        if self._scratch_dir is None:
            base = self._checkpoint.dir if self._checkpoint else None
            self._scratch_dir = Path(
                tempfile.mkdtemp(prefix="repro-expand-", dir=base)
            )
        path = self._scratch_dir / name
        with open(path, "wb") as handle:
            handle.truncate(size)
        return path

    def _candidate_buffers(self, total: int):
        """Reused scratch: repeated levels skip realloc + page faults."""
        if self._cand_buf is None or self._cand_buf.shape[0] < total:
            cap = max(total, 4096)
            self._cand_buf = np.empty((cap, self.width), dtype=np.uint8)
            self._hash_buf = np.empty(cap, dtype=np.uint64)
            self._meta_buf = np.empty((2, cap), dtype=np.int32)
        return (
            self._cand_buf[:total],
            self._hash_buf[:total],
            self._meta_buf[0, :total] if self._wants_parents() else None,
            self._meta_buf[1, :total],
        )

    def _generate_candidates(self, chunks, total):
        if self.jobs <= 1 or total < PARALLEL_MIN_CANDIDATES:
            return super()._generate_candidates(chunks, total)
        return self._generate_parallel(chunks, total)

    def _generate_parallel(self, chunks, total):
        """Fan compose+hash out to the worker pool.

        The coordinator writes the needed source levels and kept-index
        arrays into a scratch input mapping, assigns every chunk slice a
        fixed output range (chunk order = the sequential candidate
        order), and lets the pool fill the output mapping.  Parent and
        gate arrays are cheap and stay coordinator-side.
        """
        width = self.width
        srcs = sorted({src for _gi, src, _kept in chunks})
        src_base = {}
        rows_total = 0
        for src in srcs:
            src_base[src] = rows_total
            rows_total += self.level_size(src)
        kept_total = sum(kept.size for _gi, _src, kept in chunks)
        kept_offset = rows_total * width
        kept_offset += (-kept_offset) % 8
        in_path = self._scratch("in.buf", kept_offset + kept_total * 8)
        buf_in = np.memmap(in_path, dtype=np.uint8, mode="r+")
        for src in srcs:
            start = src_base[src] * width
            level = self.level_perms(src)
            buf_in[start : start + level.size] = level.reshape(-1)
        kept_arr = buf_in[kept_offset:].view(np.int64)

        out_bytes = total * width
        out_pad = (-out_bytes) % 8
        out_path = self._scratch("out.buf", out_bytes + out_pad + total * 8)

        # Slice chunks into pool tasks; output positions are fixed now,
        # so any execution order reproduces the sequential layout.
        tasks = []
        slice_rows = max(8192, -(-total // (self.jobs * 4)))
        pos = 0
        kpos = 0
        parents = np.empty(total, dtype=np.int32) if self._wants_parents() else None
        gates = np.empty(total, dtype=np.int32)
        for gi, src, kept in chunks:
            m = kept.size
            kept_arr[kpos : kpos + m] = src_base[src] + kept
            if parents is not None:
                parents[pos : pos + m] = self.offsets[src] + kept
            gates[pos : pos + m] = gi
            for k0 in range(0, m, slice_rows):
                k1 = min(m, k0 + slice_rows)
                tasks.append(
                    (
                        str(in_path), str(out_path), width, rows_total,
                        kept_offset, total, gi, kpos + k0, kpos + k1,
                        pos + k0,
                    )
                )
            pos += m
            kpos += m
        self._ensure_pool().map(_compose_task, tasks, chunksize=1)
        buf_out = np.memmap(out_path, dtype=np.uint8, mode="r+")
        cand = buf_out[:out_bytes].reshape(total, width)
        ch = buf_out[out_bytes + out_pad :].view(np.uint64)
        del buf_in
        return cand, ch, parents, gates

    # -- expansion + checkpointing -----------------------------------------------------

    def expand_level(self, cost: int) -> int:
        # Safety net: never expand against adopted-but-unvalidated
        # checkpoint slabs (try_resume clears the flag when it vouches
        # for them).
        self._discard_adopted_slabs()
        was_spilled = self._table.spilled
        n_new = super().expand_level(cost)
        if self.progress is not None and self._table.spilled and not was_spilled:
            self.progress.emit("spill", level=cost)
        if self._checkpoint is not None:
            self._write_checkpoint(cost)
        return n_new

    def _identity_dict(self) -> dict:
        identity = {
            "format": CHECKPOINT_FORMAT,
            "degree": self.degree,
            "n_binary": self.n_binary,
            "mask_words": self.mask_words,
            "track_parents": self.track_parents,
            "shard_bits": self._table.shard_bits,
        }
        identity.update(self._checkpoint.provenance)
        return identity

    def _write_checkpoint(self, cost: int) -> None:
        ck = self._checkpoint
        ck.write_level(
            cost,
            self.level_perms_raw(cost),
            self.level_masks[cost],
            self.level_parents[cost],
            self.level_gates[cost],
        )
        self._table.flush()
        manifest = self._identity_dict()
        manifest.update(
            {
                "level_offsets": list(self.offsets),
                "n_rows": self.n_rows,
                "slab_bits": self._table.slab_bits,
            }
        )
        ck.write_manifest(manifest)
        if self.progress is not None:
            self.progress.emit(
                "checkpoint", level=cost, path=str(ck.dir)
            )

    def try_resume(self) -> int:
        """Adopt a compatible checkpoint; returns the resumed cost bound.

        Call once, right after :meth:`seed_identity`.  Levels recorded
        in the manifest are loaded back, the persistent dedup slabs are
        swept back to the checkpointed row count (erasing whatever a
        mid-level crash left in flight), and any shard whose contents
        fail validation is rebuilt from the committed rows.  Returns 0
        (nothing to resume) when the directory is empty or was written
        for a different computation.
        """
        if self._checkpoint is None or self.n_levels != 1:
            return 0
        manifest = self._checkpoint.load_manifest()
        if manifest is None or not self._checkpoint.compatible(
            manifest, self._identity_dict()
        ):
            return self._abandon_resume()
        offsets = [int(o) for o in manifest.get("level_offsets", [])]
        if len(offsets) < 2 or offsets[:2] != [0, 1]:
            return self._abandon_resume()
        try:
            levels = [
                self._checkpoint.read_level(level)
                for level in range(1, len(offsets) - 1)
            ]
        except (OSError, ValueError, KeyError):
            return self._abandon_resume()
        # Adopt slab geometry before any insert touches the table.  The
        # freshly seeded identity row is re-derived below (it is part of
        # the checkpointed slabs), so reset the row counters first.
        slab_bits = int(manifest.get("slab_bits", self._table.slab_bits))
        self._table.adopt_geometry(slab_bits)
        for level, data in enumerate(levels, start=1):
            packed = pack_rows(data["perms"], self.degree)
            hashes = hash_rows(packed)
            self._grow_rows(packed.shape[0])
            self._append_level(
                packed,
                hashes,
                np.array(data["masks"], dtype=np.uint64).reshape(
                    packed.shape[0], self.mask_words
                ),
                np.array(data["parents"], dtype=np.int32),
                np.array(data["gates"], dtype=np.int32),
            )
        self._table.sweep_uncommitted(self.n_rows)
        self._validate_or_rebuild_table()
        self._table.adopted = False  # contents now vouched for
        return self.n_levels - 1

    def _abandon_resume(self) -> int:
        """No usable checkpoint: make sure stale slab contents are gone."""
        self._discard_adopted_slabs()
        return 0

    def _discard_adopted_slabs(self) -> None:
        """Rebuild adopted persistent slabs from this engine's own rows.

        A persistent table adopts whatever slab files the checkpoint
        directory holds -- including a crashed run's in-flight claims.
        :meth:`try_resume` validates or sweeps them; every *other* way
        of populating the engine (``load_level`` replays from a store
        or another engine) must first erase the foreign contents, or
        stale claims would make genuine first-producer candidates
        "verify" as duplicates and silently shrink the closure.
        """
        if not self._table.adopted:
            return
        hashes = self._hashes[: self.n_rows]
        shards = shard_of(hashes, self._table.shard_bits)
        for s in range(self._table.n_shards):
            rows = np.flatnonzero(shards == s).astype(np.int64)
            self._table.reinsert_shard(
                s, np.take(hashes, rows), (rows + 1).astype(np.int32)
            )
        self._table.adopted = False

    def load_level(self, perms, masks=None, parents=None, gates=None) -> None:
        """Append a restored level (see :meth:`VectorEngine.load_level`).

        Adopted checkpoint slabs are discarded first -- a replayed
        closure is its own source of truth -- and, when checkpointing,
        the replayed level is persisted so a later resume covers it.
        """
        self._discard_adopted_slabs()
        super().load_level(perms, masks, parents, gates)
        if self._checkpoint is not None:
            level = self.n_levels - 1
            self._checkpoint.write_level(
                level,
                self.level_perms_raw(level),
                self.level_masks[level],
                self.level_parents[level],
                self.level_gates[level],
            )

    def _validate_or_rebuild_table(self) -> None:
        """Re-derive any shard whose slab disagrees with the row store."""
        hashes = self._hashes[: self.n_rows]
        shards = shard_of(hashes, self._table.shard_bits)
        expected = np.bincount(shards, minlength=self._table.n_shards)
        layout = self._table.layout()
        for s in range(self._table.n_shards):
            if layout["rows_per_shard"][s] == int(expected[s]):
                continue
            rows = np.flatnonzero(shards == s).astype(np.int64)
            self._table.reinsert_shard(
                s, np.take(hashes, rows), (rows + 1).astype(np.int32)
            )

    # -- lifecycle ---------------------------------------------------------------------

    def release_workers(self) -> None:
        """Shut down the compose pool and scratch mappings.

        Keeps the dedup table (row lookups still need it) -- this is
        what :meth:`CascadeSearch.freeze` calls so a search pinned for
        serving does not hold idle worker processes.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        if self._scratch_dir is not None:
            import shutil

            shutil.rmtree(self._scratch_dir, ignore_errors=True)
            self._scratch_dir = None

    def close(self) -> None:
        """Release the worker pool, dedup slabs and scratch mappings."""
        if self._closed:
            return
        self._closed = True
        self.release_workers()
        self._table.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
