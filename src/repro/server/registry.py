"""The store registry: many closure stores behind one server.

A serving process used to own exactly one ``(library, cost-model)``
store.  Related syntheses -- deeper bounds of the same library, or
entirely different label spaces -- each need their own closure, so
:class:`StoreRegistry` maps a set of opened stores by

* a short **alias** (human routing key: ``repro serve fast=a.rpro
  deep=b.rpro``, defaulting to the file stem), and
* the store header's ``(library_fingerprint, cost_fingerprint)`` pair
  (machine routing key -- what a client that only knows *which closure*
  it wants sends).

Requests carry an optional ``store`` field.  Resolution rules
(:meth:`StoreRegistry.resolve`):

* absent -- the sole store if exactly one is registered, otherwise a
  :class:`~repro.errors.ProtocolError` listing the aliases;
* an exact alias match wins;
* otherwise ``LIBFP:COSTFP`` -- full fingerprints or unique prefixes --
  selects by header fingerprints (ambiguous prefixes, e.g. two depths
  of the *same* library and cost model, error with the candidate
  aliases so the client can re-route by alias).

A registry is immutable once built; SIGHUP builds a whole new registry
(re-opening every named store and re-scanning ``--store-dir``) and the
service swaps it in atomically, exactly like the single-store reload.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.errors import ProtocolError, SpecificationError

#: Aliases must be shell- and JSON-friendly and must not contain the
#: characters the spec/fingerprint grammar uses (``=`` splits
#: ``ALIAS=PATH`` specs, ``:`` splits fingerprint pairs).
_ALIAS_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: File extension ``--store-dir`` scans for.
STORE_SUFFIX = ".rpro"


@dataclass(frozen=True)
class StoreSpec:
    """One requested store: an optional explicit alias plus a path."""

    alias: str | None
    path: str


def parse_store_spec(text: str) -> StoreSpec:
    """Parse one CLI store argument: ``PATH`` or ``ALIAS=PATH``.

    Raises:
        SpecificationError: malformed alias or empty path.
    """
    alias, sep, path = text.partition("=")
    if not sep:
        alias, path = None, text
    elif not _ALIAS_RE.match(alias):
        raise SpecificationError(
            f"bad store alias {alias!r}: use letters, digits, '.', '_' "
            "or '-' (max 64 chars)"
        )
    if not path:
        raise SpecificationError(f"store spec {text!r} names no file")
    return StoreSpec(alias=alias, path=path)


def derive_alias(path: str, taken: set[str]) -> str:
    """A default alias from a store path's stem, deduplicated.

    Characters outside the alias grammar become ``-``; collisions get
    ``-2``, ``-3`` ... suffixes so every store always has a routable
    name.
    """
    stem = Path(path).stem or "store"
    base = re.sub(r"[^A-Za-z0-9._-]", "-", stem).lstrip("._-") or "store"
    base = base[:64]
    alias = base
    suffix = 2
    while alias in taken:
        alias = f"{base[:60]}-{suffix}"
        suffix += 1
    return alias


def scan_store_dir(directory: str) -> list[str]:
    """Every ``*.rpro`` file under *directory*, sorted by name.

    Raises:
        SpecificationError: the directory does not exist.
    """
    root = Path(directory)
    if not root.is_dir():
        raise SpecificationError(f"--store-dir {directory!r} is not a directory")
    return sorted(
        str(entry) for entry in root.iterdir()
        if entry.is_file() and entry.suffix == STORE_SUFFIX
    )


class StoreRegistry:
    """Immutable alias -> opened-store mapping with fingerprint routing.

    Built from ``{alias: state}`` where each *state* is a
    :class:`~repro.server.service.StoreState`; see
    :func:`build_registry` for the blocking open-everything constructor.
    """

    def __init__(self, entries: dict):
        if not entries:
            raise SpecificationError("a store registry needs at least one store")
        self._entries = dict(entries)
        self._by_fingerprint: dict[tuple[str, str], list[str]] = {}
        for alias, state in self._entries.items():
            key = (state.header.library_fingerprint,
                   state.header.cost_fingerprint)
            self._by_fingerprint.setdefault(key, []).append(alias)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.items())

    @property
    def aliases(self) -> list[str]:
        return list(self._entries)

    def get(self, alias: str):
        return self._entries[alias]

    def sole(self):
        """``(alias, state)`` of the only store; None when ambiguous."""
        if len(self._entries) != 1:
            return None
        return next(iter(self._entries.items()))

    def resolve(self, store: object):
        """Resolve a request's ``store`` field to ``(alias, state)``.

        Raises:
            ProtocolError: missing-but-ambiguous, unknown, ill-typed or
                ambiguous-fingerprint selector -- always a structured
                wire error, never a connection drop.
        """
        if store is None:
            only = self.sole()
            if only is None:
                raise ProtocolError(
                    "request names no store but this server serves "
                    f"{len(self._entries)}; pass \"store\" as one of: "
                    + ", ".join(sorted(self._entries))
                )
            return only
        if not isinstance(store, str):
            raise ProtocolError("store must be a string alias or fingerprint")
        state = self._entries.get(store)
        if state is not None:
            return store, state
        alias = self._resolve_fingerprint(store)
        if alias is not None:
            return alias, self._entries[alias]
        raise ProtocolError(
            f"unknown store {store!r}; serving: "
            + ", ".join(sorted(self._entries))
        )

    def _resolve_fingerprint(self, text: str) -> str | None:
        lib, sep, cost = text.partition(":")
        if not sep or not (lib or cost):
            return None
        hits = [
            alias
            for (lib_fp, cost_fp), aliases in self._by_fingerprint.items()
            if lib_fp.startswith(lib) and cost_fp.startswith(cost)
            for alias in aliases
        ]
        if len(hits) > 1:
            raise ProtocolError(
                f"store fingerprint {text!r} is ambiguous between: "
                + ", ".join(sorted(hits))
                + "; route by alias instead"
            )
        return hits[0] if hits else None

    def describe(self) -> dict:
        """Per-alias summary for ``healthz`` (path, bounds, fingerprints)."""
        return {
            alias: {
                "path": state.path,
                "expanded_to": state.header.expanded_to,
                "serving_cost_bound": state.cost_bound,
                "library_fingerprint": state.header.library_fingerprint,
                "cost_fingerprint": state.header.cost_fingerprint,
            }
            for alias, state in self._entries.items()
        }


def resolve_specs(
    stores: Sequence[str], store_dir: str | None
) -> list[StoreSpec]:
    """Expand CLI store arguments + ``--store-dir`` into concrete specs.

    Directory-scanned stores always use derived aliases; explicit specs
    keep theirs.  Duplicate paths are collapsed (first spec wins, so an
    explicit ``ALIAS=PATH`` beats the scan of the same file).

    Raises:
        SpecificationError: no stores at all, or a duplicate alias.
    """
    specs = [parse_store_spec(str(text)) for text in stores]
    seen_paths = {spec.path for spec in specs}
    if store_dir is not None:
        for path in scan_store_dir(store_dir):
            if path not in seen_paths:
                specs.append(StoreSpec(alias=None, path=path))
                seen_paths.add(path)
    if not specs:
        raise SpecificationError(
            "no stores to serve: give store files or --store-dir"
        )
    taken = {spec.alias for spec in specs if spec.alias is not None}
    if len(taken) != sum(1 for spec in specs if spec.alias is not None):
        raise SpecificationError("duplicate store aliases in the store list")
    return specs


def build_registry(
    stores: Sequence[str],
    store_dir: str | None = None,
    cost_bound: int | None = None,
) -> StoreRegistry:
    """Open every requested store and return the registry (blocking).

    This is the heavy half of service start/reload; the service runs it
    on its dedicated opener executor so a saturated query pool can never
    delay -- or deadlock -- a SIGHUP.

    Raises:
        StoreError / StoreMismatchError / SpecificationError: any
            unreadable store, over-deep *cost_bound* or alias conflict
            fails the whole build (the service keeps the old registry).
    """
    from repro.server.service import open_store_state

    specs = resolve_specs(stores, store_dir)
    entries: dict = {}
    for spec in specs:
        alias = spec.alias or derive_alias(spec.path, set(entries))
        if alias in entries:
            raise SpecificationError(
                f"store alias {alias!r} is claimed twice "
                f"({entries[alias].path} and {spec.path})"
            )
        entries[alias] = open_store_state(spec.path, cost_bound)
    return StoreRegistry(entries)
