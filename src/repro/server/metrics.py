"""Reservoir-sampled latency percentiles for ``healthz`` back-pressure.

Flat counters (the PR-3 ``healthz`` shape) say *how many* queries ran
but not *how long* anything waited -- the number an operator actually
needs to see back-pressure building is the tail of the queue-wait
distribution.  Keeping every sample would grow without bound on a
long-lived server, so each ``(op, dimension)`` pair keeps a fixed-size
uniform **reservoir** (Vitter's algorithm R): the first ``capacity``
observations are stored verbatim, after which each new observation
replaces a random slot with probability ``capacity / seen``.  Any
moment's reservoir is a uniform sample of everything observed so far,
so the p50/p90/p99 read off it estimate the true lifetime percentiles
with O(capacity) memory and O(1) amortized update cost.

Percentiles use the same nearest-rank rule as
``benchmarks/bench_serve.py`` (``round(q * (n - 1))`` on the sorted
sample), so a benchmark's offline numbers and a live server's
``healthz`` are directly comparable.

Thread model: observations are only recorded from the event-loop
thread (the service records them after the worker future resolves), so
no locking is needed -- mirroring the service's counter discipline.
"""

from __future__ import annotations

import random
from collections import deque

#: Default per-(op, dimension) reservoir size.  512 float samples keep
#: the p99 estimate stable (~5 samples above the 99th rank) at a few KB
#: per op.
DEFAULT_CAPACITY = 512

#: Default rolling-window size for the *recent* percentiles.  Small on
#: purpose: the window answers "how is this op doing right now", so it
#: must forget the healthy past quickly enough for a fleet detector to
#: see a regression within one polling interval of sustained traffic.
DEFAULT_WINDOW = 128

#: The quantiles ``healthz`` reports, with their payload field names.
QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def percentile_summary(
    samples: list[float], scale: float = 1.0
) -> dict | None:
    """``{p50, p90, p99}`` of *samples* (scaled, 4-dp), or None if empty.

    The one serialization of a latency distribution everything shares:
    ``healthz`` reservoirs and windows, the fleet router's per-backend
    views, and the scenario reporter's client-side measurements all run
    their samples through this, so an SLO bar checked offline and the
    number an operator reads off a live server are byte-comparable.
    """
    if not samples:
        return None
    return {
        name: round(percentile(samples, q) * scale, 4)
        for name, q in QUANTILES
    }


class Reservoir:
    """Fixed-size uniform sample of an unbounded observation stream."""

    __slots__ = ("capacity", "_samples", "_seen", "_rng")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, seed: int = 0):
        if capacity < 1:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self._samples: list[float] = []
        self._seen = 0
        # Seeded so two servers given identical traffic report identical
        # percentiles (and tests stay deterministic).
        self._rng = random.Random(seed)

    @property
    def count(self) -> int:
        """Total observations ever recorded (not the sample size)."""
        return self._seen

    def observe(self, value: float) -> None:
        self._seen += 1
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._samples[slot] = value

    def summary(self, scale: float = 1.0) -> dict | None:
        """``{count, p50, p90, p99}`` (values scaled), or None if empty."""
        quantiles = percentile_summary(self._samples, scale)
        if quantiles is None:
            return None
        return {"count": self._seen, **quantiles}


class RollingWindow:
    """Percentiles over the last *capacity* observations only.

    The lifetime :class:`Reservoir` answers "how has this server done
    since start"; a fleet supervisor deciding whether to eject a replica
    needs "how is it doing *now*".  A bounded deque of the most recent
    samples gives exactly that recency view: old healthy samples fall
    out after *capacity* new ones, so a latency regression dominates the
    reported percentiles within one window of traffic instead of being
    diluted by hours of healthy history.
    """

    __slots__ = ("capacity", "_samples", "_seen")

    def __init__(self, capacity: int = DEFAULT_WINDOW):
        if capacity < 1:
            raise ValueError("window capacity must be positive")
        self.capacity = capacity
        self._samples: deque[float] = deque(maxlen=capacity)
        self._seen = 0

    @property
    def count(self) -> int:
        """Total observations ever recorded (not the window size)."""
        return self._seen

    def observe(self, value: float) -> None:
        self._seen += 1
        self._samples.append(value)

    def summary(self, scale: float = 1.0) -> dict | None:
        """``{count, window, p50, p90, p99}`` (scaled), or None if empty.

        ``count`` is the lifetime observation count; ``window`` is how
        many recent samples the percentiles were read from.
        """
        samples = list(self._samples)
        quantiles = percentile_summary(samples, scale)
        if quantiles is None:
            return None
        return {"count": self._seen, "window": len(samples), **quantiles}


class OpMetrics:
    """Queue-wait and total-latency samplers for one operation.

    Each dimension is tracked twice: a lifetime :class:`Reservoir`
    (stable long-run percentiles) and a :class:`RollingWindow` (the
    recency view a fleet detector compares against its thresholds).
    """

    __slots__ = ("queue_wait", "latency", "recent_queue_wait",
                 "recent_latency")

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        window: int = DEFAULT_WINDOW,
    ):
        self.queue_wait = Reservoir(capacity)
        self.latency = Reservoir(capacity)
        self.recent_queue_wait = RollingWindow(window)
        self.recent_latency = RollingWindow(window)


class ServiceMetrics:
    """Per-op timing metrics behind the service's ``healthz`` payload.

    ``observe`` takes seconds; ``summary`` reports milliseconds (the
    unit every duration in the access log and ``healthz`` uses).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        window: int = DEFAULT_WINDOW,
    ):
        self._capacity = capacity
        self._window = window
        self._ops: dict[str, OpMetrics] = {}

    def observe(self, op: str, queue_wait_s: float, latency_s: float) -> None:
        metrics = self._ops.get(op)
        if metrics is None:
            metrics = self._ops[op] = OpMetrics(self._capacity, self._window)
        metrics.queue_wait.observe(queue_wait_s)
        metrics.latency.observe(latency_s)
        metrics.recent_queue_wait.observe(queue_wait_s)
        metrics.recent_latency.observe(latency_s)

    def summary(self) -> dict:
        """Lifetime and recent per-op percentiles, all in milliseconds.

        ``queue_wait_ms`` / ``latency_ms`` are the lifetime reservoirs;
        the ``*_recent_ms`` siblings are last-window views (what the
        fleet supervisor's detector reads to spot a live regression).
        """
        queue_wait: dict = {}
        latency: dict = {}
        queue_wait_recent: dict = {}
        latency_recent: dict = {}
        for op, metrics in sorted(self._ops.items()):
            for sampler, into in (
                (metrics.queue_wait, queue_wait),
                (metrics.latency, latency),
                (metrics.recent_queue_wait, queue_wait_recent),
                (metrics.recent_latency, latency_recent),
            ):
                summary = sampler.summary(scale=1e3)
                if summary is not None:
                    into[op] = summary
        return {
            "queue_wait_ms": queue_wait,
            "latency_ms": latency,
            "queue_wait_recent_ms": queue_wait_recent,
            "latency_recent_ms": latency_recent,
        }
