"""Fault-tolerant serving fleet: router, supervisor, chaos harness.

A fleet is one front :mod:`~repro.fleet.router` (speaking the exact
``repro serve`` wire protocol) over N supervised backend ``repro
serve`` replicas, plus the :mod:`~repro.fleet.supervisor` closed loop
(detect -> propose -> verify -> apply) that keeps the replica set
healthy, and the :mod:`~repro.fleet.chaos` fault injectors that prove
the whole arrangement actually tolerates crashes, hangs, brown-outs
and connection resets.

This package ``__init__`` deliberately imports nothing: modules here
sit both *below* the server stack (``repro.server.app`` consults
:mod:`~repro.fleet.chaos`) and *above* it (``repro.fleet.manager``
spawns servers), so eager re-exports would create an import cycle.
Import the submodule you need directly.
"""
