"""Unified telemetry: metrics registry, tracing, progress, log tailing.

One package for everything PR 10 correlates: a process-wide
:class:`MetricsRegistry` rendered as Prometheus text on ``/metrics``,
:class:`TraceSource` minting the ``trace_id``/``span_id`` pair that
ties a router attempt to a replica access-log record,
:class:`AccessLogWriter` (the service's log thread, extracted and made
observable), :class:`ProgressReporter` for precompute phase events,
and the ``repro tail`` joins in :mod:`repro.telemetry.tail`.  See
``docs/observability.md`` for the metric inventory and contracts.
"""

from .logwriter import AccessLogWriter
from .progress import ProgressReporter, make_tty, strip_nondeterministic
from .registry import (
    DEFAULT_BUCKETS_MS,
    METRICS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_value,
    parse_prometheus_text,
    sample_value,
)
from .tail import (
    classify_record,
    collect_logs,
    format_text,
    join_traces,
    read_log_records,
    rollup_stores,
    summarize_logs,
    summarize_progress,
)
from .trace import (
    SPAN_FIELD,
    SPAN_HEADER,
    TRACE_FIELD,
    TRACE_HEADER,
    TraceSource,
    validate_trace_field,
)

__all__ = [
    "AccessLogWriter",
    "Counter",
    "DEFAULT_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "METRICS_CONTENT_TYPE",
    "MetricsRegistry",
    "ProgressReporter",
    "SPAN_FIELD",
    "SPAN_HEADER",
    "TRACE_FIELD",
    "TRACE_HEADER",
    "TraceSource",
    "classify_record",
    "collect_logs",
    "format_text",
    "format_value",
    "join_traces",
    "make_tty",
    "parse_prometheus_text",
    "read_log_records",
    "rollup_stores",
    "sample_value",
    "strip_nondeterministic",
    "summarize_logs",
    "summarize_progress",
    "validate_trace_field",
]
