"""Hidden Markov models realized by quantum state machines.

The paper (Sections 4, 6) points out that its synthesis extends "without
any modification" to probabilistic FSMs and hidden Markov models: the
machine's measured state is hidden, the measured output wires are the
emissions.  :class:`QuantumHMM` wraps a machine and provides the standard
HMM queries with *exact* arithmetic:

* forward algorithm (sequence likelihood),
* posterior state distribution (filtering),
* most likely state path (Viterbi),
* seeded sampling of emission sequences.

The underlying conditional P(output, next_state | input, state) is the
exact product-measurement law of the quantum circuit, so likelihoods are
rationals, not floats.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from fractions import Fraction

from repro.errors import SpecificationError
from repro.automata.machine import QuantumStateMachine

Bits = tuple[int, ...]


class QuantumHMM:
    """HMM view of a quantum state machine.

    Args:
        machine: the underlying machine (its state wires become the
            hidden chain, its output wires the emission alphabet).
        initial_distribution: prior over the 2**k hidden states; defaults
            to a point mass on the machine's initial state.
    """

    def __init__(
        self,
        machine: QuantumStateMachine,
        initial_distribution: Sequence[Fraction] | None = None,
    ):
        self._machine = machine
        size = machine.n_states
        if initial_distribution is None:
            dist = [Fraction(0)] * size
            dist[_index(machine.state)] = Fraction(1)
        else:
            dist = [Fraction(x) for x in initial_distribution]
            if len(dist) != size or sum(dist) != 1 or any(x < 0 for x in dist):
                raise SpecificationError("bad initial distribution")
        self._initial = tuple(dist)
        self._width = len(machine.state_wires)

    @property
    def machine(self) -> QuantumStateMachine:
        return self._machine

    @property
    def n_states(self) -> int:
        return self._machine.n_states

    @property
    def initial_distribution(self) -> tuple[Fraction, ...]:
        return self._initial

    # -- kernels ------------------------------------------------------------------

    def kernel(
        self, input_bits: Sequence[int], state_index: int
    ) -> dict[tuple[Bits, int], Fraction]:
        """P(output, next_state | input, state) with integer state ids."""
        joint = self._machine.joint_distribution(
            input_bits, _bits(state_index, self._width)
        )
        return {
            (out, _index(nxt)): p for (out, nxt), p in joint.items()
        }

    # -- forward algorithm ----------------------------------------------------------

    def forward(
        self,
        outputs: Sequence[Bits],
        inputs: Sequence[Sequence[int]] | None = None,
    ) -> tuple[Fraction, tuple[Fraction, ...]]:
        """Exact forward pass.

        Args:
            outputs: observed emission sequence (tuples of output bits).
            inputs: per-step input symbols; defaults to empty inputs
                (valid when the machine has no input wires).

        Returns:
            (likelihood, posterior): the exact probability of the
            observation sequence, and the filtered state distribution
            after the last observation (all-zero when likelihood is 0).
        """
        inputs = self._resolve_inputs(inputs, len(outputs))
        alpha = list(self._initial)
        for observed, input_bits in zip(outputs, inputs):
            nxt = [Fraction(0)] * self.n_states
            for state, mass in enumerate(alpha):
                if not mass:
                    continue
                for (out, s2), p in self.kernel(input_bits, state).items():
                    if out == tuple(observed):
                        nxt[s2] += mass * p
            alpha = nxt
        likelihood = sum(alpha, Fraction(0))
        if likelihood:
            posterior = tuple(a / likelihood for a in alpha)
        else:
            posterior = tuple(Fraction(0) for _ in alpha)
        return likelihood, posterior

    def sequence_probability(
        self,
        outputs: Sequence[Bits],
        inputs: Sequence[Sequence[int]] | None = None,
    ) -> Fraction:
        """Exact likelihood of an emission sequence."""
        return self.forward(outputs, inputs)[0]

    # -- Viterbi -----------------------------------------------------------------------

    def most_likely_path(
        self,
        outputs: Sequence[Bits],
        inputs: Sequence[Sequence[int]] | None = None,
    ) -> tuple[Fraction, tuple[int, ...]]:
        """Exact Viterbi decoding.

        Returns:
            (path probability, state sequence) where the state sequence
            lists the hidden state *after* each emission.
        """
        inputs = self._resolve_inputs(inputs, len(outputs))
        # delta[s] = (best probability reaching s, backpointer chain)
        delta: list[tuple[Fraction, tuple[int, ...]]] = [
            (p, ()) for p in self._initial
        ]
        for observed, input_bits in zip(outputs, inputs):
            nxt: list[tuple[Fraction, tuple[int, ...]]] = [
                (Fraction(0), ()) for _ in range(self.n_states)
            ]
            for state, (mass, path) in enumerate(delta):
                if not mass:
                    continue
                for (out, s2), p in self.kernel(input_bits, state).items():
                    if out != tuple(observed):
                        continue
                    candidate = mass * p
                    if candidate > nxt[s2][0]:
                        nxt[s2] = (candidate, path + (s2,))
            delta = nxt
        best_prob, best_path = max(delta, key=lambda t: t[0])
        return best_prob, best_path

    # -- sampling ----------------------------------------------------------------------

    def sample(
        self,
        n_steps: int,
        rng: random.Random,
        inputs: Sequence[Sequence[int]] | None = None,
    ) -> list[Bits]:
        """Sample an emission sequence of length *n_steps* (stateful)."""
        inputs = self._resolve_inputs(inputs, n_steps)
        self._machine.reset()
        return [self._machine.step(x, rng).output_bits for x in inputs]

    def _resolve_inputs(
        self, inputs: Sequence[Sequence[int]] | None, length: int
    ) -> list[tuple[int, ...]]:
        if inputs is None:
            if self._machine.input_wires:
                raise SpecificationError(
                    "machine has input wires; provide per-step inputs"
                )
            return [()] * length
        resolved = [tuple(int(b) for b in x) for x in inputs]
        if len(resolved) != length:
            raise SpecificationError(
                f"need {length} input symbols, got {len(resolved)}"
            )
        return resolved


def _bits(index: int, width: int) -> Bits:
    return tuple((index >> (width - 1 - w)) & 1 for w in range(width))


def _index(bits: Bits) -> int:
    value = 0
    for b in bits:
        value = value * 2 + b
    return value
