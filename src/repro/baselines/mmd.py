"""Transformation-based reversible synthesis (Miller-Maslov-Dueck style).

Reference [10] of the paper: a fast heuristic that walks the truth table
in input order and appends NCT gates that fix each row without disturbing
the rows already fixed.  It is not optimal -- which is precisely its role
here: the benchmarks compare (heuristic NCT) vs (optimal NCT) vs (the
paper's direct elementary-gate synthesis) on both gate count and quantum
cost.

This is the basic unidirectional output-side variant of the DAC 2003
algorithm:

1. If f(0) != 0, apply NOT gates on the set bits of f(0); now f(0) = 0.
2. For i = 1 .. 2**n - 1 with v = f(i) != i:
   a. for every bit in i & ~v, apply a Toffoli targeting it, controlled
      by the set bits of v (only rows >= i can match those controls);
   b. for every bit in v & ~i, apply a Toffoli targeting it, controlled
      by the set bits of i.
   After (a)+(b) row i maps to i; earlier rows are untouched because any
   pattern containing all controls is >= i.
3. The collected gates satisfy f * g1 * ... * gm = identity; since every
   NCT gate is an involution, the synthesized circuit is the reversed
   gate list.
"""

from __future__ import annotations

from repro.baselines.nct import NCTGate
from repro.errors import SpecificationError
from repro.perm.permutation import Permutation


def _set_bits(value: int, n_wires: int) -> list[int]:
    """Wire indices whose bit is set (wire 0 = most significant)."""
    return [
        w for w in range(n_wires) if (value >> (n_wires - 1 - w)) & 1
    ]


def _gate_for(target_wire: int, control_value: int, n_wires: int) -> NCTGate:
    controls = tuple(
        w for w in _set_bits(control_value, n_wires) if w != target_wire
    )
    return NCTGate(target_wire, controls, n_wires)


def mmd_synthesize(target: Permutation, n_wires: int) -> list[NCTGate]:
    """Synthesize *target* with the transformation-based heuristic.

    Args:
        target: permutation of the 2**n binary patterns.
        n_wires: register width.

    Returns:
        NCT gate list in cascade order realizing the target exactly
        (verified cheaply by the caller via ``NCTLibrary.permutation_of``).
    """
    size = 2**n_wires
    if target.degree != size:
        raise SpecificationError(
            f"target degree {target.degree} != 2**{n_wires}"
        )
    f = list(target.images)
    collected: list[NCTGate] = []

    def apply_output_gate(gate: NCTGate) -> None:
        """Post-compose the gate on the output side of the table."""
        perm = gate.permutation()
        for row in range(size):
            f[row] = perm(f[row])
        collected.append(gate)

    # Step 1: zero row.
    if f[0] != 0:
        for wire in _set_bits(f[0], n_wires):
            apply_output_gate(NCTGate(wire, (), n_wires))

    # Step 2: remaining rows in ascending order.
    for i in range(1, size):
        v = f[i]
        if v == i:
            continue
        # (a) turn on the bits missing from v; controls = ones(v).
        for wire in _set_bits(i & ~v, n_wires):
            apply_output_gate(_gate_for(wire, v, n_wires))
            v |= 1 << (n_wires - 1 - wire)
        # (b) turn off the extra bits of v; controls = ones(i).
        for wire in _set_bits(v & ~i, n_wires):
            apply_output_gate(_gate_for(wire, i, n_wires))
            v &= ~(1 << (n_wires - 1 - wire))
        assert f[i] == i, "row invariant violated"

    # f has been driven to the identity; undo it in reverse.
    collected.reverse()
    return collected
