"""Unit tests for end-to-end verification (repro.sim.verify)."""

import pytest

from repro.core.circuit import Circuit
from repro.core.mce import express
from repro.core.probabilistic import express_probabilistic
from repro.gates import named
from repro.sim.verify import (
    VerificationReport,
    verify_circuit_against_permutation,
    verify_gate_representation,
    verify_probabilistic_synthesis,
    verify_synthesis,
)


class TestReport:
    def test_record_and_bool(self):
        report = VerificationReport(passed=True)
        report.record("a", True)
        assert bool(report) and report.checks == ["a"]
        report.record("b", False, "broke")
        assert not bool(report)
        assert report.failures == ["b: broke"]


class TestVerifyCircuit:
    def test_correct_circuit_passes(self):
        circuit = Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)
        report = verify_circuit_against_permutation(circuit, named.PERES)
        assert report
        assert "reasonable-cascade" in report.checks

    def test_wrong_target_fails(self):
        circuit = Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)
        report = verify_circuit_against_permutation(circuit, named.TOFFOLI)
        assert not report

    def test_unreasonable_cascade_fails_early(self):
        circuit = Circuit.from_names("V_BA F_BA", 3)
        report = verify_circuit_against_permutation(circuit, named.IDENTITY3)
        assert not report
        assert any("reasonable" in f for f in report.failures)


class TestVerifySynthesis:
    def test_express_results_verify(self, library3, search3):
        for name in ("toffoli", "peres", "fredkin", "g2", "g3", "g4"):
            result = express(named.TARGETS[name], library3, search=search3)
            assert verify_synthesis(result), name

    def test_not_layer_results_verify(self, library3, search3):
        target = named.not_layer_permutation(0b011)
        result = express(target, library3, search=search3)
        assert verify_synthesis(result)

    def test_cost_consistency_checked(self, library3, search3):
        import dataclasses

        result = express(named.PERES, library3, search=search3)
        tampered = dataclasses.replace(result, cost=3)
        report = verify_synthesis(tampered)
        assert not report
        assert any("cost" in f for f in report.failures)


class TestVerifyProbabilistic:
    def test_rng_spec_verifies(self, library3, search3):
        from tests.test_probabilistic import v_spec_3q

        result = express_probabilistic(v_spec_3q(), library3, search=search3)
        assert verify_probabilistic_synthesis(result)

    def test_tampered_spec_fails(self, library3, search3):
        import dataclasses

        from tests.test_probabilistic import v_spec_3q
        from repro.core.probabilistic import ProbabilisticSpec
        from repro.mvl.patterns import binary_patterns

        result = express_probabilistic(v_spec_3q(), library3, search=search3)
        wrong_spec = ProbabilisticSpec(tuple(binary_patterns(3)))
        tampered = dataclasses.replace(result, spec=wrong_spec)
        assert not verify_probabilistic_synthesis(tampered)


class TestGateRepresentation:
    def test_three_qubit_library_fully_consistent(self, library3):
        report = verify_gate_representation(library3)
        assert report
        # 18 gates x (38 - |banned patterns per gate|) checks.
        assert len(report.checks) == 372

    def test_two_qubit_library_consistent(self, library2):
        assert verify_gate_representation(library2)
