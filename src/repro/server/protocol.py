"""Wire protocol of the synthesis service (stdlib-only, two framings).

``repro serve`` listens on a single TCP port and auto-detects, per
connection, which of two framings the peer speaks by looking at the
first line it sends:

* **NDJSON IPC** (first byte ``{``): newline-delimited JSON.  Each
  request is one line ``{"id": ..., "op": "...", "params": {...}}`` and
  each response one line ``{"id": ..., "ok": true, "result": {...}}``
  or ``{"id": ..., "ok": false, "error": {...}}``.  The connection is
  persistent; requests are answered in order, so clients may pipeline.
  This is the framing :class:`repro.client.ServeClient` uses.

* **HTTP/1.1** (anything else): a minimal hand-rolled subset --
  request line, headers, optional ``Content-Length`` body; responses
  are ``application/json`` with ``Content-Length`` and keep-alive
  support.  Meant for curl, load balancer health checks and ad-hoc
  tooling, not as a general HTTP stack (no chunked encoding, no TLS).

Operations (the JSON surface is identical under both framings)::

    op            params                              result
    ------------  ----------------------------------  -------------------------
    synth         target (spec string), all?,         {target, results: [record]}
                  allow_not?, cost_bound?
    synth-batch   targets ([spec]), allow_not?,       {results: [{ok, result |
                  cost_bound?                          error}], count, failures}
    cost-table    cost_bound?, include_members?       {cost_bound, g_sizes, ...}
    store-info    --                                  store header + serving info
    healthz       --                                  liveness, counters and
                                                      p50/p90/p99 timings
    metrics       --                                  Prometheus exposition text

Every store-touching operation additionally accepts an optional
**store selector** -- a registry alias or a ``LIBFP:COSTFP``
fingerprint pair (see :mod:`repro.server.registry`).  In the NDJSON
framing it is the top-level ``"store"`` field next to ``op``/``params``;
in HTTP it is the ``store`` query parameter or body key.  Servers with
one store treat an absent selector as that store; servers with several
answer a structured ``protocol`` error listing the aliases.

``record`` is the JSON result form of :func:`repro.io.result_to_dict`
(n_qubits / gates / target / cost / not_mask), so server responses can
be re-verified and re-loaded client-side exactly like ``synth --save``
files.  HTTP routes: ``POST /synth``, ``POST /synth-batch``,
``GET|POST /cost-table``, ``GET /store-info``, ``GET /healthz``,
``GET /metrics``.

**Tracing fields.**  Both framings carry two *optional* correlation
fields -- ``trace_id`` (one per end-to-end request, minted by the
fleet router when the client brings none) and ``span_id`` (one per
delivery attempt).  NDJSON carries them as top-level keys next to
``op``; HTTP as ``X-Repro-Trace-Id`` / ``X-Repro-Span-Id`` headers.
Responses echo ``trace_id`` the same way, and error payloads carry it
as a top-level ``trace_id`` key.  Absent fields change nothing on the
wire: an untraced request and its response are byte-identical to the
pre-tracing protocol, which is what keeps old clients and pinned
goldens working.  The ``metrics`` op answers with Prometheus
exposition text -- as raw ``text/plain`` under HTTP (the one non-JSON
response in the protocol), and wrapped as ``{"content_type", "text"}``
under NDJSON.

Errors travel as structured JSON objects ``{"code", "message",
"details"?}``; :func:`error_payload` maps the library's exception
hierarchy onto stable codes and :func:`error_to_exception` inverts the
mapping client-side, so a :class:`CostBoundExceededError` raised inside
the server resurfaces in the client process as the *same* exception
type with the *same* message as a local ``synth --store`` call.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import (
    CostBoundExceededError,
    FleetOverloadedError,
    FrozenSearchError,
    InvalidPermutationError,
    InvalidValueError,
    ProtocolError,
    ReproError,
    ServerError,
    SpecificationError,
    StoreError,
    StoreMismatchError,
    StoreVersionError,
)
from repro.telemetry.trace import (
    SPAN_HEADER,
    TRACE_HEADER,
    validate_trace_field,
)

#: Default TCP port of ``repro serve`` (no IANA meaning; picked free).
DEFAULT_PORT = 7205
#: Per-line / per-header-block size limit (bytes) -- protects the
#: server from unbounded buffering on garbage input.
MAX_LINE = 1 << 20
#: Largest accepted HTTP body / NDJSON request line.
MAX_BODY = 8 << 20

OPERATIONS = (
    "synth", "synth-batch", "cost-table", "store-info", "healthz", "metrics",
)

#: Exception -> (code, HTTP status), most specific first.  The order
#: matters: the first ``isinstance`` hit wins.
_ERROR_TABLE: tuple[tuple[type, str, int], ...] = (
    (CostBoundExceededError, "cost-bound-exceeded", 422),
    (ProtocolError, "protocol", 400),
    (FleetOverloadedError, "FLEET_OVERLOADED", 503),
    (StoreMismatchError, "store-mismatch", 409),
    (StoreVersionError, "store-version", 500),
    (StoreError, "store-error", 500),
    (FrozenSearchError, "frozen", 409),
    (SpecificationError, "specification", 400),
    (InvalidPermutationError, "bad-target", 400),
    (InvalidValueError, "bad-value", 400),
    (ServerError, "server-error", 500),
    (ReproError, "repro-error", 400),
)

#: code -> single-message-argument exception class (client side).  The
#: codes with richer payloads are special-cased in
#: :func:`error_to_exception`.
_CODE_TO_EXCEPTION = {
    "protocol": ProtocolError,
    "FLEET_OVERLOADED": FleetOverloadedError,
    "store-mismatch": StoreMismatchError,
    "store-version": StoreVersionError,
    "store-error": StoreError,
    "frozen": FrozenSearchError,
    "specification": SpecificationError,
    "bad-target": InvalidPermutationError,
    "bad-value": InvalidValueError,
    "server-error": ServerError,
    "repro-error": ReproError,
}


def error_payload(exc: BaseException) -> tuple[dict, int]:
    """``({"code", "message", "details"?}, http_status)`` for an exception.

    Unknown exception types map to ``internal``/500 with their class
    name in ``details`` -- the server never leaks a traceback onto the
    wire.
    """
    for klass, code, status in _ERROR_TABLE:
        if isinstance(exc, klass):
            payload: dict = {"code": code, "message": str(exc)}
            if isinstance(exc, CostBoundExceededError):
                payload["details"] = {
                    "target_description": exc.target_description,
                    "cost_bound": exc.cost_bound,
                }
            return payload, status
    return (
        {
            "code": "internal",
            "message": "internal server error",
            "details": {"type": type(exc).__name__},
        },
        500,
    )


def error_to_exception(error: dict) -> ReproError:
    """Rebuild the library exception a structured error describes.

    The inverse of :func:`error_payload`: a ``cost-bound-exceeded``
    error becomes a genuine :class:`CostBoundExceededError` (message
    byte-identical to the server-side original), known codes map to
    their exception class, and anything else becomes a
    :class:`ServerError` carrying the server's message.
    """
    code = str(error.get("code", "internal"))
    message = str(error.get("message", "unspecified server error"))
    details = error.get("details") or {}
    if code == "cost-bound-exceeded":
        try:
            return CostBoundExceededError(
                str(details["target_description"]), int(details["cost_bound"])
            )
        except (KeyError, TypeError, ValueError):
            pass  # fall through to the generic mapping
    klass = _CODE_TO_EXCEPTION.get(code, ServerError)
    return klass(message)


def parse_endpoint(
    text: str, default_host: str = "127.0.0.1", default_port: int = DEFAULT_PORT
) -> tuple[str, object]:
    """Classify a server endpoint string as TCP or UNIX-socket.

    ``unix:/path/to.sock`` -> ``("unix", "/path/to.sock")``; anything
    else goes through :func:`parse_address` ->
    ``("tcp", (host, port))``.

    Raises:
        SpecificationError: empty UNIX path or unparseable TCP address.
    """
    text = text.strip()
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise SpecificationError("unix: endpoint is missing a socket path")
        return "unix", path
    return "tcp", parse_address(text, default_host, default_port)


def parse_address(
    text: str, default_host: str = "127.0.0.1", default_port: int = DEFAULT_PORT
) -> tuple[str, int]:
    """``host:port`` / ``:port`` / ``port`` / ``host`` -> ``(host, port)``.

    Raises:
        SpecificationError: unparseable port.
    """
    text = text.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        if text.isdigit():
            return default_host, _parse_port(text)
        return text or default_host, default_port
    if not port_text:
        raise SpecificationError(f"address {text!r} is missing a port")
    return host or default_host, _parse_port(port_text)


def _parse_port(text: str) -> int:
    try:
        port = int(text)
    except ValueError:
        raise SpecificationError(f"bad port {text!r}") from None
    if not 0 <= port <= 65535:
        raise SpecificationError(f"port {port} outside 0..65535")
    return port


# -- NDJSON framing --------------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    """One decoded service request, framing-independent."""

    op: str
    params: dict = field(default_factory=dict)
    id: object = None
    #: Optional store selector: a registry alias or ``LIBFP:COSTFP``
    #: fingerprint pair; ``None`` means the server's sole store.
    store: str | None = None
    #: HTTP only: client asked to keep the connection open.
    keep_alive: bool = True
    #: Optional correlation IDs (see the module docstring).  ``None``
    #: keeps requests, responses and access records byte-identical to
    #: the pre-tracing wire format.
    trace_id: str | None = None
    span_id: str | None = None


def _check_store_field(store: object) -> str | None:
    if store is not None and not isinstance(store, str):
        raise ProtocolError("store must be a string alias or fingerprint")
    return store


def decode_request_line(line: bytes) -> Request:
    """Decode one NDJSON request line.

    Raises:
        ProtocolError: not a JSON object, missing/unknown ``op``, a
            non-object ``params``, or a non-string ``store``.
    """
    if len(line) > MAX_BODY:
        raise ProtocolError(f"request line exceeds {MAX_BODY} bytes")
    try:
        data = json.loads(line)
    except ValueError:
        raise ProtocolError("request is not valid JSON") from None
    if not isinstance(data, dict):
        raise ProtocolError("request must be a JSON object")
    op = data.get("op")
    if not isinstance(op, str) or op not in OPERATIONS:
        raise ProtocolError(
            f"unknown operation {op!r}; expected one of {', '.join(OPERATIONS)}"
        )
    params = data.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("params must be a JSON object")
    return Request(
        op=op,
        params=params,
        id=data.get("id"),
        store=_check_store_field(data.get("store")),
        trace_id=validate_trace_field(data.get("trace_id"), "trace_id"),
        span_id=validate_trace_field(data.get("span_id"), "span_id"),
    )


def encode_response(
    request_id: object,
    result: dict | None,
    error: dict | None = None,
    trace_id: str | None = None,
) -> bytes:
    """One NDJSON response line (ok/result or ok=false/error).

    A *trace_id* is echoed as a top-level key so clients correlate
    without touching ``result`` (whose bytes stay pinned by the
    routed-vs-direct identity tests); ``None`` adds nothing.
    """
    if error is None:
        body: dict = {"id": request_id, "ok": True, "result": result}
    else:
        body = {"id": request_id, "ok": False, "error": error}
    if trace_id is not None:
        body["trace_id"] = trace_id
    return json.dumps(body, separators=(",", ":")).encode() + b"\n"


# -- HTTP framing ----------------------------------------------------------------------

_HTTP_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Error codes that indicate a *server-side* fault (HTTP 5xx).  The
#: fleet router treats these -- and only these -- as grounds to count a
#: breaker failure and fail the request over to a replica; 4xx codes
#: are the client's own mistake and would fail identically everywhere.
#: ``FLEET_OVERLOADED`` is deliberately excluded: shedding is a
#: structured refusal by a healthy process, not a fault.
SERVER_FAULT_CODES = frozenset(
    code for _klass, code, status in _ERROR_TABLE
    if status >= 500 and code != "FLEET_OVERLOADED"
) | {"internal"}

#: (method, path) -> op for the body-less GET routes.
_GET_ROUTES = {
    "/healthz": "healthz",
    "/store-info": "store-info",
    "/cost-table": "cost-table",
    "/metrics": "metrics",
}
_POST_ROUTES = {
    "/synth": "synth",
    "/synth-batch": "synth-batch",
    "/cost-table": "cost-table",
}


#: Query keys whose values are names, never numbers/booleans -- an
#: all-digit store alias like ``007`` must survive the query parser.
_STRING_QUERY_KEYS = frozenset({"store"})


def _parse_query(query: str) -> dict:
    """Decode ``a=1&b=x`` into JSON-ish params (ints/bools recognized)."""
    params: dict = {}
    for pair in query.split("&"):
        if not pair:
            continue
        key, _sep, value = pair.partition("=")
        if key in _STRING_QUERY_KEYS:
            params[key] = value
        elif value.isdigit() or (value[:1] == "-" and value[1:].isdigit()):
            params[key] = int(value)
        elif value.lower() in ("true", "false"):
            params[key] = value.lower() == "true"
        else:
            params[key] = value
    return params


async def read_http_request(reader, request_line: bytes) -> Request:
    """Parse one HTTP/1.1 request whose request line was already read.

    Reads headers and an optional ``Content-Length`` JSON body from
    *reader*.  Raises :class:`ProtocolError` on any framing violation;
    the caller turns that into a 400 response.
    """
    try:
        method, raw_path, version = request_line.decode("ascii").split()
    except ValueError:
        raise ProtocolError("malformed HTTP request line") from None
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if len(line) > MAX_LINE or len(headers) > 100:
            raise ProtocolError("oversized HTTP header block")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed HTTP header {line!r}")
        headers[name.strip().lower()] = value.strip()

    path, _sep, query = raw_path.partition("?")
    params = _parse_query(query)

    try:
        body_size = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise ProtocolError("bad Content-Length header") from None
    if body_size > MAX_BODY:
        raise ProtocolError(f"HTTP body exceeds {MAX_BODY} bytes")
    if body_size:
        body = await reader.readexactly(body_size)
        try:
            data = json.loads(body)
        except ValueError:
            raise ProtocolError("HTTP body is not valid JSON") from None
        if not isinstance(data, dict):
            raise ProtocolError("HTTP body must be a JSON object")
        params.update(data)

    if method == "GET":
        op = _GET_ROUTES.get(path)
    elif method == "POST":
        op = _POST_ROUTES.get(path)
    else:
        raise ProtocolError(f"method {method} not supported")
    if op is None:
        raise ProtocolError(f"no such endpoint: {method} {path}")
    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
    # The store selector rides as a query parameter (kept raw by
    # _parse_query) or body key; an ill-typed body value is the same
    # ProtocolError the NDJSON framing raises.
    return Request(
        op=op, params=params,
        store=_check_store_field(params.pop("store", None)),
        keep_alive=keep_alive,
        trace_id=validate_trace_field(
            headers.get(TRACE_HEADER.lower()), "trace_id"
        ),
        span_id=validate_trace_field(
            headers.get(SPAN_HEADER.lower()), "span_id"
        ),
    )


def _http_head(
    status: int,
    content_type: str,
    body_size: int,
    keep_alive: bool,
    extra_headers: dict | None = None,
) -> bytes:
    reason = _HTTP_STATUS_TEXT.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {body_size}",
        f"Connection: {connection}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def http_response(
    status: int,
    payload: dict,
    keep_alive: bool = True,
    extra_headers: dict | None = None,
) -> bytes:
    """Serialize one ``application/json`` HTTP/1.1 response."""
    body = json.dumps(payload, separators=(",", ":")).encode() + b"\n"
    return _http_head(
        status, "application/json", len(body), keep_alive, extra_headers
    ) + body


def http_text_response(
    status: int,
    text: str,
    content_type: str = "text/plain; charset=utf-8",
    keep_alive: bool = True,
    extra_headers: dict | None = None,
) -> bytes:
    """Serialize one plain-text HTTP/1.1 response (``GET /metrics``)."""
    body = text.encode("utf-8")
    return _http_head(
        status, content_type, len(body), keep_alive, extra_headers
    ) + body
