"""Symmetry classification of implementation sets.

The paper observes structure inside its implementation lists: the two
Peres circuits are "Hermitian adjoint implementations" of each other
(Figures 4 and 8), the four Toffoli circuits split into two adjoint
pairs distinguished by which qubit carries the XORs (Figure 9), and the
24 universal G[4] gates fall into four 6-member wire-relabeling orbits.

This module mechanizes those observations for *any* implementation set:
group circuits under the two cost-preserving symmetries of the library,

* the **adjoint swap** V <-> V+ (an involution on cascades), and
* **wire relabelings** that fix the realized function's wire roles,

and report the family decomposition.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.core.mce import SynthesisResult


@dataclass(frozen=True)
class ImplementationFamilies:
    """Decomposition of an implementation set under library symmetries.

    Attributes:
        circuits: the classified circuits, input order preserved.
        adjoint_pairs: index pairs (i, j), i < j, with circuit j equal to
            circuit i with every V and V+ swapped.
        self_adjoint: indices of circuits fixed by the adjoint swap
            (possible only for all-Feynman cascades).
        relabeling_classes: partition of indices into orbits under wire
            relabelings combined with the adjoint swap.
    """

    circuits: tuple[Circuit, ...]
    adjoint_pairs: tuple[tuple[int, int], ...]
    self_adjoint: tuple[int, ...]
    relabeling_classes: tuple[tuple[int, ...], ...]


def _as_circuits(implementations) -> tuple[Circuit, ...]:
    out = []
    for item in implementations:
        if isinstance(item, SynthesisResult):
            out.append(item.circuit)
        elif isinstance(item, Circuit):
            out.append(item)
        else:
            raise TypeError(f"cannot classify {type(item).__name__}")
    return tuple(out)


def classify_implementations(implementations) -> ImplementationFamilies:
    """Decompose circuits (or synthesis results) into symmetry families."""
    circuits = _as_circuits(implementations)
    index_of = {c: i for i, c in enumerate(circuits)}

    adjoint_pairs = []
    self_adjoint = []
    for i, circuit in enumerate(circuits):
        swapped = circuit.adjoint_swapped()
        j = index_of.get(swapped)
        if j is None:
            continue
        if j == i:
            self_adjoint.append(i)
        elif i < j:
            adjoint_pairs.append((i, j))

    n = circuits[0].n_qubits if circuits else 0
    wire_maps = [
        {w: perm[w] for w in range(n)}
        for perm in itertools.permutations(range(n))
    ]
    remaining = set(range(len(circuits)))
    classes = []
    while remaining:
        seed = min(remaining)
        orbit = {seed}
        frontier = [circuits[seed]]
        while frontier:
            circuit = frontier.pop()
            for variant in _symmetry_variants(circuit, wire_maps):
                j = index_of.get(variant)
                if j is not None and j not in orbit:
                    orbit.add(j)
                    frontier.append(circuits[j])
        classes.append(tuple(sorted(orbit)))
        remaining -= orbit
    return ImplementationFamilies(
        circuits=circuits,
        adjoint_pairs=tuple(adjoint_pairs),
        self_adjoint=tuple(self_adjoint),
        relabeling_classes=tuple(classes),
    )


def _symmetry_variants(circuit: Circuit, wire_maps) -> list[Circuit]:
    variants = []
    for wire_map in wire_maps:
        moved = circuit.relabeled(wire_map)
        variants.append(moved)
        variants.append(moved.adjoint_swapped())
    return variants


def xor_wires(circuit: Circuit) -> frozenset[int]:
    """The wires carrying Feynman targets (the paper's Figure 9 split)."""
    from repro.gates.kinds import GateKind

    return frozenset(
        g.target for g in circuit if g.kind is GateKind.CNOT
    )
