"""Scenario engine: seeded workloads, trace replay, SLO reports.

Turns load testing from anecdote into regression suite:

* :mod:`repro.scenario.spec` -- named traffic shapes as checked-in
  TOML/JSON files (the repository's ``scenarios/`` directory), parsed
  into validated :class:`~repro.scenario.spec.ScenarioSpec` objects.
* :mod:`repro.scenario.workload` -- a deterministic, seeded request
  stream per spec, and a threaded runner driving it against a live
  server or fleet front (``repro load SCENARIO --server ADDR``).
* :mod:`repro.scenario.replay` -- re-drives a recorded NDJSON access
  log and diffs outcome codes + result bytes against golden stores
  (``repro replay LOG --server ADDR``).
* :mod:`repro.scenario.report` -- per-scenario stats, SLO bars, and
  the ``BENCH_scenarios.json`` artifact.
"""

from .replay import load_trace, parse_golden_specs, replay
from .spec import (
    Arrival,
    ScenarioSpec,
    SloBars,
    find_scenario,
    load_scenario,
    parse_scenario,
)
from .report import (
    check_slo,
    format_report,
    scenario_report,
    snapshot,
    summarize,
    write_bench,
)
from .workload import (
    PlannedRequest,
    ScenarioSample,
    generate,
    planned_to_dict,
    run_scenario,
)

__all__ = [
    "Arrival",
    "PlannedRequest",
    "ScenarioSample",
    "ScenarioSpec",
    "SloBars",
    "check_slo",
    "find_scenario",
    "format_report",
    "generate",
    "load_scenario",
    "load_trace",
    "parse_golden_specs",
    "parse_scenario",
    "planned_to_dict",
    "replay",
    "run_scenario",
    "scenario_report",
    "snapshot",
    "summarize",
    "write_bench",
]
