"""Radix-generic elementary gates (the Muthukrishnan--Stroud family).

The binary engine's gate alphabet (V / V+ / CNOT) is intrinsically
two-valued: controls fire on the pure value 1 and the square-root-of-NOT
pair only makes sense on qubits.  For qutrits and ququarts the standard
elementary alphabet -- Di & Wei (arXiv:1105.5485) for the ternary case,
following Muthukrishnan & Stroud -- is instead built from *local digit
permutations*:

* **single-qudit gates**: any permutation of the digit alphabet
  ``0..r-1`` applied to one wire.  For r = 3 Di & Wei's five non-trivial
  ops are the two cyclic shifts ``X+1`` / ``X+2`` and the three
  transpositions ``X01`` / ``X02`` / ``X12``.
* **controlled gates**: the Muthukrishnan--Stroud two-qudit primitive --
  apply the local op to the target wire iff the control wire carries the
  *top* digit ``r-1``.

Costs follow Di & Wei's convention: a single-qudit gate costs 1, a
controlled gate costs 2 (it takes two two-qudit interactions to realize
the MS primitive in their construction).

These gates duck-type the :class:`~repro.gates.gate.Gate` surface the
engine consumes -- ``name`` / ``kind`` / ``n_qubits`` /
``permutation(space)`` / ``dagger()`` / ``constrained_wires`` -- so the
cascade search, the stores and the serving tier work unchanged on top of
a digit :class:`~repro.mvl.labels.LabelSpace`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidGateError
from repro.gates.gate import wire_letter
from repro.mvl.labels import LabelSpace
from repro.perm.permutation import Permutation


def _op_name(images: tuple[int, ...]) -> str:
    """Canonical name of a local digit permutation.

    Cyclic shifts render as ``X+k``, transpositions as ``Xij``; any other
    permutation falls back to the explicit image string (``X[201]``).
    """
    r = len(images)
    if all(images[v] == (v + images[0]) % r for v in range(r)) and images[0]:
        return f"X+{images[0]}"
    moved = [v for v in range(r) if images[v] != v]
    if len(moved) == 2 and images[moved[0]] == moved[1]:
        return f"X{moved[0]}{moved[1]}"
    return "X[" + "".join(str(v) for v in images) + "]"


def _op_images(name: str, radix: int) -> tuple[int, ...]:
    """Inverse of :func:`_op_name` for the named families."""
    if name.startswith("X+"):
        shift = int(name[2:])
        return tuple((v + shift) % radix for v in range(radix))
    if name.startswith("X[") and name.endswith("]"):
        return tuple(int(c) for c in name[2:-1])
    if name.startswith("X") and len(name) == 3:
        i, j = int(name[1]), int(name[2])
        images = list(range(radix))
        images[i], images[j] = j, i
        return tuple(images)
    raise InvalidGateError(f"unknown local op name {name!r}")


@dataclass(frozen=True)
class MVGateKind:
    """A member of the radix-r gate alphabet.

    Plays the role :class:`~repro.gates.kinds.GateKind` plays for binary
    gates: it carries the local digit permutation, whether the gate is
    the controlled (MS) variant, and the Di & Wei cost convention.  It is
    deliberately *not* an enum -- the alphabet is parameterized by radix
    -- but exposes the same properties the engine dispatches on, and
    identity checks against ``GateKind`` members are safely False.
    """

    images: tuple[int, ...]
    controlled: bool
    radix: int

    def __post_init__(self) -> None:
        if len(self.images) != self.radix or set(self.images) != set(
            range(self.radix)
        ):
            raise InvalidGateError(
                f"local op {self.images} is not a permutation of "
                f"0..{self.radix - 1}"
            )

    @property
    def name(self) -> str:
        return ("C" if self.controlled else "") + _op_name(self.images)

    #: GateKind-compatible alias (``kind.value`` renders gate names).
    @property
    def value(self) -> str:
        return self.name

    @property
    def is_two_qubit(self) -> bool:
        return self.controlled

    @property
    def is_controlled(self) -> bool:
        return self.controlled

    @property
    def default_cost(self) -> int:
        """Di & Wei costs: single-qudit 1, Muthukrishnan--Stroud 2."""
        return 2 if self.controlled else 1

    @property
    def adjoint_kind(self) -> "MVGateKind":
        inverse = [0] * self.radix
        for v, image in enumerate(self.images):
            inverse[image] = v
        return MVGateKind(tuple(inverse), self.controlled, self.radix)


@dataclass(frozen=True)
class MVGate:
    """A placed radix-r gate; duck-types :class:`~repro.gates.gate.Gate`.

    Args:
        kind: the alphabet member (local op + controlled flag).
        target: the wire the local op acts on.
        control: the MS control wire (fires on digit ``r-1``), or None.
        n_qubits: register width.
    """

    kind: MVGateKind
    target: int
    control: int | None
    n_qubits: int

    def __post_init__(self) -> None:
        if self.kind.controlled != (self.control is not None):
            raise InvalidGateError(
                f"kind {self.kind.name} and control wire disagree"
            )
        wires = [self.target] + ([] if self.control is None else [self.control])
        for wire in wires:
            if not 0 <= wire < self.n_qubits:
                raise InvalidGateError(
                    f"wire {wire} out of range for {self.n_qubits} wires"
                )
        if self.control == self.target:
            raise InvalidGateError("control and target must differ")

    @classmethod
    def from_name(cls, name: str, n_qubits: int, radix: int) -> "MVGate":
        """Parse ``X+1_A`` / ``X01_B`` / ``CX12_BA`` style names."""
        try:
            kind_text, wires = name.split("_")
            controlled = kind_text.startswith("C")
            images = _op_images(kind_text[1:] if controlled else kind_text, radix)
            kind = MVGateKind(images, controlled, radix)
            target = ord(wires[0]) - ord("A")
            if controlled:
                if len(wires) != 2:
                    raise ValueError
                control: int | None = ord(wires[1]) - ord("A")
            else:
                if len(wires) != 1:
                    raise ValueError
                control = None
        except (ValueError, IndexError):
            raise InvalidGateError(f"cannot parse MV gate name {name!r}") from None
        return cls(kind, target, control, n_qubits)

    @property
    def name(self) -> str:
        """``X01_B`` (single) or ``CX+1_BA`` (target wire, then control)."""
        if self.control is None:
            return f"{self.kind.name}_{wire_letter(self.target)}"
        return (
            f"{self.kind.name}_"
            f"{wire_letter(self.target)}{wire_letter(self.control)}"
        )

    def __str__(self) -> str:
        return self.name

    @property
    def constrained_wires(self) -> tuple[int, ...]:
        """Empty: digit spaces carry no mixed values, so nothing is banned."""
        return ()

    def dagger(self) -> "MVGate":
        return MVGate(
            self.kind.adjoint_kind, self.target, self.control, self.n_qubits
        )

    def apply(self, pattern) -> tuple[int, ...]:
        """Act on a digit tuple (MS semantics: fire on control == r-1)."""
        values = tuple(int(v) for v in pattern)
        if self.control is not None and values[self.control] != self.kind.radix - 1:
            return values
        out = list(values)
        out[self.target] = self.kind.images[out[self.target]]
        return tuple(out)

    def permutation(self, space: LabelSpace) -> Permutation:
        """The gate as a permutation of a digit label space."""
        if space.n_qubits != self.n_qubits or space.radix != self.kind.radix:
            raise InvalidGateError(
                f"gate {self.name} (radix {self.kind.radix}, "
                f"{self.n_qubits} wires) does not act on {space!r}"
            )
        return Permutation.from_images(space.images_from_map(self.apply))


def local_ops(radix: int) -> tuple[tuple[int, ...], ...]:
    """The elementary local-op alphabet for a radix, in library order.

    Cyclic shifts first (``X+1 .. X+(r-1)``), then transpositions in
    lexicographic order.  For r = 3 this is exactly Di & Wei's five
    elementary single-qutrit gates; for r = 4 the same two families (3
    shifts + 6 transpositions) generate S4 and keep the alphabet closed
    under inversion, which the search's adjoint back-edge filter uses.
    """
    ops: list[tuple[int, ...]] = []
    for shift in range(1, radix):
        ops.append(tuple((v + shift) % radix for v in range(radix)))
    for i in range(radix):
        for j in range(i + 1, radix):
            images = list(range(radix))
            images[i], images[j] = j, i
            ops.append(tuple(images))
    return tuple(ops)


def mv_library_gates(width: int, radix: int) -> tuple[MVGate, ...]:
    """All placements of the radix alphabet on a *width*-wire register.

    Order (pinned by the golden tables): every single-qudit op on every
    wire first (cost-1 block), then every controlled op on every ordered
    (target, control) pair (cost-2 block).
    """
    if radix**width > 256:
        raise InvalidGateError(
            f"radix {radix} width {width} needs {radix**width} labels; "
            "the byte-translate kernel caps the degree at 256"
        )
    gates: list[MVGate] = []
    for target in range(width):
        for images in local_ops(radix):
            gates.append(
                MVGate(MVGateKind(images, False, radix), target, None, width)
            )
    for target in range(width):
        for control in range(width):
            if control == target:
                continue
            for images in local_ops(radix):
                gates.append(
                    MVGate(MVGateKind(images, True, radix), target, control, width)
                )
    return tuple(gates)
