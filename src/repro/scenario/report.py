"""Scenario reporting: stats, SLO bars, and the BENCH artifact.

:func:`summarize` reduces a run's :class:`~repro.scenario.workload
.ScenarioSample` list to the per-scenario counters every serving PR is
judged on -- request/op counts, error classes, ``FLEET_OVERLOADED``
shed rate, client-side p50/p90/p99 (via the *same*
:func:`~repro.server.metrics.percentile_summary` the server's healthz
uses, so the two are byte-comparable) and throughput.

:func:`check_slo` turns a spec's ``[slo]`` table into a list of
violation messages (empty = pass).  Semantics:

* ``p50_ms`` / ``p99_ms`` bound the measured client-side latency
  percentiles of *all* requests (errors included -- a fast error is
  still an answer).
* ``max_error_rate`` bounds ``errors / requests`` where errors exclude
  ``allowed_error_codes`` (a pathological-cost-bound scenario expects
  ``cost-bound-exceeded``) and exclude shed requests.
* ``max_shed_rate`` bounds ``shed / requests`` separately: shedding is
  a structured refusal by a healthy fleet, budgeted on its own.

:func:`snapshot` grabs a server's (or fleet front's) healthz payload
before/after a run, so reports can carry the server-side recent-window
percentiles and -- against a router -- backend/breaker/shed state
(the same payload ``repro fleet status --json`` prints).

:func:`write_bench` appends per-scenario entries into
``BENCH_scenarios.json`` (one object keyed by scenario name), the
artifact ``benchmarks/bench_scenarios.py`` emits.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.client import http_request
from repro.errors import ServerError
from repro.server.metrics import percentile_summary

from .spec import ScenarioSpec, SloBars
from .workload import ScenarioSample

_SHED = "FLEET_OVERLOADED"


def summarize(
    samples: list[ScenarioSample], wall_s: float | None = None
) -> dict:
    """Per-scenario counters from one run's samples (see module doc)."""
    ops = Counter(sample.op for sample in samples)
    outcomes = Counter(
        sample.outcome for sample in samples if sample.outcome != "ok"
    )
    shed = outcomes.pop(_SHED, 0)
    latencies = [sample.latency_s for sample in samples]
    total = len(samples)
    stats = {
        "requests": total,
        "ok": total - shed - sum(outcomes.values()),
        "errors": dict(sorted(outcomes.items())),
        "shed": shed,
        "shed_rate": round(shed / total, 6) if total else 0.0,
        "ops": dict(sorted(ops.items())),
        "latency_ms": percentile_summary(latencies, scale=1e3),
    }
    if wall_s is not None and wall_s > 0:
        stats["wall_s"] = round(wall_s, 4)
        stats["throughput_rps"] = round(total / wall_s, 2)
    return stats


def error_rate(stats: dict, allowed: tuple[str, ...] = ()) -> float:
    """``errors / requests`` excluding *allowed* codes (and shed)."""
    total = stats["requests"]
    if not total:
        return 0.0
    counted = sum(
        count for code, count in stats["errors"].items()
        if code not in allowed
    )
    return counted / total


def check_slo(slo: SloBars, stats: dict) -> list[str]:
    """Violation messages for *stats* against *slo* (empty = pass)."""
    violations: list[str] = []
    latency = stats.get("latency_ms") or {}
    for bar, name in ((slo.p50_ms, "p50"), (slo.p99_ms, "p99")):
        if bar is None:
            continue
        measured = latency.get(name)
        if measured is None:
            violations.append(f"{name}: no latency samples to check")
        elif measured > bar:
            violations.append(
                f"{name} {measured:.2f} ms exceeds the {bar:.2f} ms bar"
            )
    if slo.max_error_rate is not None:
        rate = error_rate(stats, slo.allowed_error_codes)
        if rate > slo.max_error_rate:
            violations.append(
                f"error rate {rate:.4f} exceeds {slo.max_error_rate:.4f} "
                f"(errors: {stats['errors']})"
            )
    if slo.max_shed_rate is not None and (
            stats["shed_rate"] > slo.max_shed_rate):
        violations.append(
            f"shed rate {stats['shed_rate']:.4f} exceeds "
            f"{slo.max_shed_rate:.4f} ({stats['shed']} shed)"
        )
    return violations


def scenario_report(
    spec: ScenarioSpec,
    samples: list[ScenarioSample],
    wall_s: float | None = None,
    seed: int | None = None,
    server_health: dict | None = None,
) -> dict:
    """One scenario's full report: stats + SLO verdict (+ healthz)."""
    stats = summarize(samples, wall_s)
    violations = check_slo(spec.slo, stats)
    report = {
        "scenario": spec.name,
        "seed": spec.seed if seed is None else seed,
        **stats,
        "slo_violations": violations,
        "slo_pass": not violations,
    }
    if server_health is not None:
        # The server-side recent windows (and, against a fleet front,
        # backend/breaker/shed state) alongside the client-side view.
        report["server"] = {
            key: server_health[key]
            for key in (
                "status", "role", "latency_recent_ms",
                "queue_wait_recent_ms", "healthy_backends",
                "admitted_backends", "shed", "routed", "failovers",
            )
            if key in server_health
        }
    return report


def snapshot(address: str) -> dict:
    """A server's / fleet front's healthz payload (one HTTP call)."""
    status, payload = http_request(address, "/healthz")
    if status != 200:
        raise ServerError(f"healthz returned HTTP {status}: {payload}")
    return payload


def format_report(report: dict) -> str:
    """Human one-screen rendering of one scenario report."""
    latency = report.get("latency_ms") or {}
    lines = [
        f"scenario {report['scenario']} (seed {report['seed']}): "
        f"{report['requests']} requests, {report['ok']} ok, "
        f"{sum(report['errors'].values())} errors, {report['shed']} shed",
    ]
    if latency:
        lines.append(
            "  latency p50/p90/p99: "
            f"{latency.get('p50')}/{latency.get('p90')}/"
            f"{latency.get('p99')} ms"
        )
    if "throughput_rps" in report:
        lines.append(
            f"  throughput: {report['throughput_rps']} req/s over "
            f"{report['wall_s']} s"
        )
    if report["errors"]:
        lines.append(f"  error classes: {report['errors']}")
    if report["slo_violations"]:
        lines.append("  SLO: FAIL")
        lines.extend(
            f"    - {violation}" for violation in report["slo_violations"]
        )
    else:
        lines.append("  SLO: pass")
    return "\n".join(lines)


def write_bench(path: str | Path, entries: dict[str, dict]) -> None:
    """Write ``BENCH_scenarios.json``: ``{scenarios: {name: report}}``."""
    import platform

    payload = {
        "scenarios": entries,
        "python": platform.python_version(),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
