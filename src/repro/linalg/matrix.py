"""Dense exact matrices over the dyadic Gaussian ring.

Small, dependency-free matrices sufficient for the paper's verification
needs: products, tensor (Kronecker) products, Hermitian adjoints,
unitarity checks and exact equality.  Sizes in this project are at most
2**n x 2**n for n <= 4 qubits, so no sparse representation is required.

For numeric work (statevector simulation, benchmarks), see
:mod:`repro.sim.statevector`, which uses numpy; this module is the exact
oracle those fast paths are validated against.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import InvalidValueError
from repro.linalg.dyadic import DyadicComplex

EntryLike = DyadicComplex | int


def _as_entry(value: EntryLike) -> DyadicComplex:
    if isinstance(value, DyadicComplex):
        return value
    if isinstance(value, int):
        return DyadicComplex(value)
    raise InvalidValueError(f"cannot use {value!r} as an exact matrix entry")


class Matrix:
    """An immutable exact matrix.

    Args:
        rows: iterable of row iterables of ``DyadicComplex`` or ``int``.
    """

    __slots__ = ("_rows", "_n_rows", "_n_cols")

    def __init__(self, rows: Iterable[Iterable[EntryLike]]):
        data = tuple(tuple(_as_entry(x) for x in row) for row in rows)
        if not data:
            raise InvalidValueError("matrix needs at least one row")
        width = len(data[0])
        if width == 0 or any(len(row) != width for row in data):
            raise InvalidValueError("matrix rows must be non-empty and equal length")
        self._rows = data
        self._n_rows = len(data)
        self._n_cols = width

    # -- constructors --------------------------------------------------------

    @classmethod
    def identity(cls, size: int) -> "Matrix":
        """The size x size identity matrix."""
        return cls(
            [[1 if r == c else 0 for c in range(size)] for r in range(size)]
        )

    @classmethod
    def zero(cls, n_rows: int, n_cols: int | None = None) -> "Matrix":
        """An all-zero matrix."""
        n_cols = n_rows if n_cols is None else n_cols
        return cls([[0] * n_cols for _ in range(n_rows)])

    @classmethod
    def column(cls, entries: Sequence[EntryLike]) -> "Matrix":
        """A column vector."""
        return cls([[e] for e in entries])

    @classmethod
    def basis_state(cls, index: int, dimension: int) -> "Matrix":
        """The computational basis column vector |index> in C^dimension."""
        if not 0 <= index < dimension:
            raise InvalidValueError(f"basis index {index} out of range")
        return cls.column([1 if i == index else 0 for i in range(dimension)])

    # -- shape / access ------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n_rows, self._n_cols)

    @property
    def is_square(self) -> bool:
        return self._n_rows == self._n_cols

    def __getitem__(self, key: tuple[int, int]) -> DyadicComplex:
        r, c = key
        return self._rows[r][c]

    def rows(self) -> tuple[tuple[DyadicComplex, ...], ...]:
        """The raw row tuples (immutable)."""
        return self._rows

    def column_vector(self) -> tuple[DyadicComplex, ...]:
        """Entries of a single-column matrix as a tuple."""
        if self._n_cols != 1:
            raise InvalidValueError("matrix is not a column vector")
        return tuple(row[0] for row in self._rows)

    # -- algebra ---------------------------------------------------------------

    def __add__(self, other: "Matrix") -> "Matrix":
        self._check_same_shape(other)
        return Matrix(
            [
                [a + b for a, b in zip(ra, rb)]
                for ra, rb in zip(self._rows, other._rows)
            ]
        )

    def __sub__(self, other: "Matrix") -> "Matrix":
        self._check_same_shape(other)
        return Matrix(
            [
                [a - b for a, b in zip(ra, rb)]
                for ra, rb in zip(self._rows, other._rows)
            ]
        )

    def __matmul__(self, other: "Matrix") -> "Matrix":
        return self.multiply(other)

    def multiply(self, other: "Matrix") -> "Matrix":
        """Matrix product self @ other."""
        if self._n_cols != other._n_rows:
            raise InvalidValueError(
                f"cannot multiply {self.shape} by {other.shape}"
            )
        other_cols = list(zip(*other._rows))
        result = []
        for row in self._rows:
            out_row = []
            for col in other_cols:
                acc = DyadicComplex(0)
                for a, b in zip(row, col):
                    if not (a.is_zero or b.is_zero):
                        acc = acc + a * b
                out_row.append(acc)
            result.append(out_row)
        return Matrix(result)

    def scale(self, factor: EntryLike) -> "Matrix":
        """Scalar multiple."""
        f = _as_entry(factor)
        return Matrix([[f * x for x in row] for row in self._rows])

    def kron(self, other: "Matrix") -> "Matrix":
        """Kronecker (tensor) product self (x) other.

        Qubit convention: ``kron(A, B)`` puts A on the more significant
        wire, matching the pattern encoding in :mod:`repro.mvl.patterns`.
        """
        result = []
        for ra in self._rows:
            for rb in other._rows:
                result.append([a * b for a in ra for b in rb])
        return Matrix(result)

    def dagger(self) -> "Matrix":
        """Hermitian adjoint (conjugate transpose)."""
        return Matrix(
            [
                [self._rows[r][c].conjugate() for r in range(self._n_rows)]
                for c in range(self._n_cols)
            ]
        )

    def transpose(self) -> "Matrix":
        return Matrix(
            [
                [self._rows[r][c] for r in range(self._n_rows)]
                for c in range(self._n_cols)
            ]
        )

    def power(self, exponent: int) -> "Matrix":
        """Non-negative integer matrix power."""
        if not self.is_square:
            raise InvalidValueError("matrix power needs a square matrix")
        if exponent < 0:
            raise InvalidValueError("negative powers unsupported (use dagger)")
        result = Matrix.identity(self._n_rows)
        base = self
        while exponent:
            if exponent & 1:
                result = result @ base
            base = base @ base
            exponent >>= 1
        return result

    # -- predicates -------------------------------------------------------------

    def is_unitary(self) -> bool:
        """Exact unitarity check: U @ U+ == I."""
        if not self.is_square:
            return False
        return self @ self.dagger() == Matrix.identity(self._n_rows)

    def is_identity(self) -> bool:
        return self.is_square and self == Matrix.identity(self._n_rows)

    def is_permutation_matrix(self) -> bool:
        """True when the matrix is a 0/1 matrix with one 1 per row/column."""
        if not self.is_square:
            return False
        one = DyadicComplex(1)
        for row in self._rows:
            ones = sum(1 for x in row if x == one)
            zeros = sum(1 for x in row if x.is_zero)
            if ones != 1 or ones + zeros != self._n_cols:
                return False
        for col in zip(*self._rows):
            if sum(1 for x in col if x == one) != 1:
                return False
        return True

    def permutation_images(self) -> tuple[int, ...]:
        """Column-to-row images of a permutation matrix.

        For a permutation matrix U with U|j> = |images[j]>, returns
        ``images``.  Raises on non-permutation matrices.
        """
        if not self.is_permutation_matrix():
            raise InvalidValueError("matrix is not a permutation matrix")
        images = []
        one = DyadicComplex(1)
        for c in range(self._n_cols):
            for r in range(self._n_rows):
                if self._rows[r][c] == one:
                    images.append(r)
                    break
        return tuple(images)

    # -- equality / io -------------------------------------------------------------

    def _check_same_shape(self, other: "Matrix") -> None:
        if self.shape != other.shape:
            raise InvalidValueError(f"shape mismatch {self.shape} vs {other.shape}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matrix):
            return NotImplemented
        return self.shape == other.shape and self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def to_complex_lists(self) -> list[list[complex]]:
        """Convert to nested lists of built-in complex numbers."""
        return [[x.to_complex() for x in row] for row in self._rows]

    def __repr__(self) -> str:
        return f"Matrix({self._n_rows}x{self._n_cols})"

    def __str__(self) -> str:
        cells = [[str(x) for x in row] for row in self._rows]
        width = max(len(c) for row in cells for c in row)
        return "\n".join(
            "[" + "  ".join(c.rjust(width) for c in row) + "]" for row in cells
        )
