"""Exact simulation over the dyadic Gaussian ring (the verification oracle).

Everything here is tolerance-free: states and unitaries are exact
:class:`~repro.linalg.matrix.Matrix` objects, so an equality check proves
(not suggests) that a synthesized cascade implements its specification.
Slower than numpy by orders of magnitude, which is fine for its role.
"""

from __future__ import annotations

from repro.errors import InvalidValueError
from repro.core.circuit import Circuit
from repro.linalg.constants import pattern_state
from repro.linalg.matrix import Matrix
from repro.mvl.patterns import Pattern, binary_patterns


class ExactSimulator:
    """Exact unitary evolution of quaternary product states."""

    def __init__(self, n_qubits: int):
        if n_qubits < 1:
            raise InvalidValueError("need at least one qubit")
        self._n_qubits = n_qubits

    @property
    def n_qubits(self) -> int:
        return self._n_qubits

    def run(self, circuit: Circuit, pattern: Pattern) -> Matrix:
        """Final exact state (column matrix) for an initial pattern.

        Applies gates one by one (cheaper than forming the full cascade
        unitary when the circuit is long).
        """
        self._check(circuit, pattern)
        state = pattern_state(pattern)
        for gate in circuit:
            state = gate.unitary @ state
        return state

    def agrees_with_pattern(
        self, circuit: Circuit, pattern: Pattern, expected: Pattern
    ) -> bool:
        """True iff the exact output state equals |expected> exactly.

        This is the bridge between the unitary semantics and the paper's
        quaternary abstraction: no global-phase allowance is needed
        because the value system {0, 1, V0, V1} is phase-exact
        (V V |1> = |0> literally, not up to phase).
        """
        return self.run(circuit, pattern) == pattern_state(expected)

    def binary_action(self, circuit: Circuit) -> list[Matrix]:
        """Exact output states for all binary basis inputs, in order."""
        return [self.run(circuit, p) for p in binary_patterns(self._n_qubits)]

    def _check(self, circuit: Circuit, pattern: Pattern) -> None:
        if circuit.n_qubits != self._n_qubits:
            raise InvalidValueError("circuit width mismatch")
        if pattern.n_qubits != self._n_qubits:
            raise InvalidValueError("pattern width mismatch")
