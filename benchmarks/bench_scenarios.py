"""E-scenarios -- the checked-in load scenarios as a benchmark suite.

Runs the scenario library (``scenarios/*.toml``) against a live
multi-store server -- a deep cost-5 store and a shallow cost-4 store
under the ``deep`` / ``shallow`` aliases every spec assumes -- and
records one report per scenario: client-side p50/p90/p99, error
classes, ``FLEET_OVERLOADED`` shed rate, throughput, and the SLO
verdict.  The same reports the CLI's ``repro load`` prints, produced
by the same :func:`repro.scenario.scenario_report` code path, so the
benchmark artifact and an operator's terminal never disagree.

Four scenarios ride by default:

* **steady_interactive** -- paced single-target queries, the
  interactive baseline whose p50/p99 bars are the ones to watch;
* **bursty_batch** -- synchronized ``synth-batch`` bursts through the
  coalescing dispatcher;
* **hotkey_skew** -- 90/10 store-alias skew (one hot store);
* **pathological_cost_bounds** -- every query carries an over-tight
  ``cost_bound``; the *expected* failure class must stay structured
  (``cost-bound-exceeded``), allowed by the spec's own SLO.

Acceptance bars: every scenario passes its own ``[slo]`` table, and
the pathological scenario's errors are exclusively the allowed class.
Results land in ``BENCH_scenarios.json`` at the repo root so
per-scenario latency and shed rates are trendable across PRs.

Run standalone (prints the per-scenario reports)::

    PYTHONPATH=src python benchmarks/bench_scenarios.py

or as a pytest module (asserts the bars)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py -s

Markers: carries ``benchmark`` (timing-sensitive; excluded from the
default tier-1 selection, run explicitly or with ``-m benchmark``).
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import pytest

from repro import scenario
from repro.core.search import CascadeSearch
from repro.core.store import save_search
from repro.gates.library import GateLibrary
from repro.server import BackgroundServer

COST_BOUND = 5  # the `deep` store: covers Toffoli
SHALLOW_BOUND = 4  # the `shallow` store: what the specs' pools need

#: Scenario names run by the benchmark, in run order.
SCENARIOS = (
    "steady_interactive",
    "bursty_batch",
    "hotkey_skew",
    "pathological_cost_bounds",
)

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SCENARIO_DIR = _REPO_ROOT / "scenarios"
_JSON_PATH = _REPO_ROOT / "BENCH_scenarios.json"


def _build_store(work_dir: Path, name: str, bound: int) -> Path:
    path = work_dir / f"{name}.rpro"
    search = CascadeSearch(GateLibrary(3), track_parents=True)
    search.extend_to(bound)
    save_search(search, path)
    return path


def measure(work_dir: Path) -> dict:
    """Run every benchmark scenario; returns ``{name: report}``."""
    deep = _build_store(work_dir, "deep", COST_BOUND)
    shallow = _build_store(work_dir, "shallow", SHALLOW_BOUND)
    entries: dict[str, dict] = {}
    # Specs without a [stores] table send no selector, which a
    # multi-store registry rejects by design -- so they get a
    # single-store server, and alias-weighted specs get the two-store
    # registry they declare.
    with BackgroundServer(str(deep)) as single, BackgroundServer(
        [f"deep={deep}", f"shallow={shallow}"]
    ) as multi:
        for name in SCENARIOS:
            spec = scenario.load_scenario(_SCENARIO_DIR / f"{name}.toml")
            server = multi if spec.stores else single
            _plan, samples, wall_s = scenario.run_scenario(
                spec, server.address_text,
                timing=spec.arrival.shape != "closed",
            )
            health = scenario.snapshot(server.address_text)
            entries[name] = scenario.scenario_report(
                spec, samples, wall_s, server_health=health
            )
    scenario.write_bench(_JSON_PATH, entries)
    return entries


def report(entries: dict) -> str:
    lines = [scenario.format_report(entry) for entry in entries.values()]
    lines.append(f"(wrote {_JSON_PATH.name})")
    return "\n".join(lines)


@pytest.mark.benchmark
def test_every_scenario_passes_its_own_slo(tmp_path):
    entries = measure(tmp_path)
    print("\n" + report(entries))
    assert set(entries) == set(SCENARIOS)
    for name, entry in entries.items():
        assert entry["slo_pass"], (
            f"scenario {name} violated its SLO: {entry['slo_violations']}"
        )
    pathological = entries["pathological_cost_bounds"]
    assert set(pathological["errors"]) == {"cost-bound-exceeded"}, (
        "the pathological scenario must fail only with the structured "
        f"cost-bound code, got: {pathological['errors']}"
    )
    assert sum(pathological["errors"].values()) > 0, (
        "an over-tight cost_bound produced no errors at all -- the "
        "param is not reaching the service"
    )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        print(report(measure(Path(tmp))))
    sys.exit(0)
