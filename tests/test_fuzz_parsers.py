"""Fuzzing the text-facing parsers: they must reject garbage, not crash.

Every user-facing parser (cycle notation, gate names, pattern strings,
circuit records) either returns a valid object or raises a library error
-- never an unhandled TypeError/IndexError/ValueError from internals.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.core.circuit import Circuit
from repro.gates.gate import Gate
from repro.io import circuit_from_dict
from repro.mvl.patterns import pattern_from_string
from repro.perm.permutation import Permutation

LIBRARY_ERRORS = (ReproError,)

text = st.text(
    alphabet=st.sampled_from(list("()0123456789,VF+_ABC vx")), max_size=24
)


class TestCycleStringFuzz:
    @given(text=text)
    @settings(max_examples=300, deadline=None)
    def test_parse_or_clean_error(self, text):
        try:
            perm = Permutation.from_cycle_string(8, text)
        except LIBRARY_ERRORS:
            return
        # On success the result must round-trip semantically.
        assert perm.degree == 8
        again = Permutation.from_cycle_string(8, perm.cycle_string())
        assert again == perm

    @given(degree=st.integers(min_value=1, max_value=64), text=text)
    @settings(max_examples=200, deadline=None)
    def test_any_degree(self, degree, text):
        try:
            perm = Permutation.from_cycle_string(degree, text)
        except LIBRARY_ERRORS:
            return
        assert perm.degree == degree


class TestGateNameFuzz:
    @given(text=text)
    @settings(max_examples=300, deadline=None)
    def test_parse_or_clean_error(self, text):
        try:
            gate = Gate.from_name(text, 3)
        except LIBRARY_ERRORS:
            return
        assert gate.name == text.strip() or gate.name  # well-formed result

    @given(text=text)
    @settings(max_examples=150, deadline=None)
    def test_circuit_from_names(self, text):
        try:
            circuit = Circuit.from_names(text, 3)
        except LIBRARY_ERRORS:
            return
        assert circuit.n_qubits == 3


class TestPatternStringFuzz:
    @given(text=text)
    @settings(max_examples=300, deadline=None)
    def test_parse_or_clean_error(self, text):
        try:
            pattern = pattern_from_string(text)
        except LIBRARY_ERRORS:
            return
        assert pattern.n_qubits >= 1


class TestScenarioSpecFuzz:
    """Scenario specs are checked-in config: a typo'd field, negative
    rate or unknown op must fail a CI job with a one-line
    SpecificationError, never an internal traceback."""

    _scalar = st.one_of(
        st.none(), st.booleans(),
        st.integers(-10, 10**6),
        st.floats(allow_nan=True, allow_infinity=True),
        st.text(max_size=12),
        st.lists(st.text(max_size=8), max_size=3),
    )

    @given(
        data=st.dictionaries(
            st.sampled_from([
                "name", "seed", "requests", "concurrency", "targets",
                "batch_size", "arrival", "ops", "stores", "params",
                "slo", "rate", "bogus_field",
            ]),
            _scalar,
            max_size=6,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_top_level_garbage_rejected_cleanly(self, data):
        from repro.scenario import parse_scenario

        try:
            spec = parse_scenario(data)
        except LIBRARY_ERRORS:
            return
        assert spec.name and spec.requests >= 1

    @given(
        ops=st.dictionaries(
            st.sampled_from([
                "synth", "synth-batch", "cost-table", "healthz",
                "synthh", "", "delete-store",
            ]),
            st.one_of(
                st.integers(-5, 5),
                st.floats(allow_nan=True, allow_infinity=True),
                st.booleans(), st.text(max_size=4),
            ),
            max_size=4,
        ),
        arrival=st.dictionaries(
            st.sampled_from(["shape", "rate", "burst", "pause", "jitter"]),
            st.one_of(
                st.sampled_from(["closed", "steady", "bursty", "poisson"]),
                st.floats(allow_nan=True, allow_infinity=True),
                st.integers(-10, 10),
            ),
            max_size=4,
        ),
    )
    @settings(max_examples=300, deadline=None)
    def test_ops_and_arrival_tables(self, ops, arrival):
        from repro.scenario import parse_scenario

        data = {
            "name": "fuzz", "targets": ["peres"],
            "ops": ops, "arrival": arrival,
        }
        try:
            spec = parse_scenario(data)
        except LIBRARY_ERRORS:
            return
        # Accepted specs are internally consistent: known ops only,
        # positive total weight, a legal arrival shape.
        assert all(op in ("synth", "synth-batch", "cost-table",
                          "healthz", "store-info") for op, _w in spec.ops)
        assert any(weight > 0 for _op, weight in spec.ops)
        assert spec.arrival.shape in ("closed", "steady", "bursty")

    @given(targets=st.lists(text, max_size=5))
    @settings(max_examples=200, deadline=None)
    def test_target_pool_garbage(self, targets):
        from repro.scenario import parse_scenario

        try:
            spec = parse_scenario({"name": "fuzz", "targets": targets})
        except LIBRARY_ERRORS:
            return
        assert len(spec.targets) == len(targets)

    @given(
        slo=st.dictionaries(
            st.sampled_from([
                "p50_ms", "p99_ms", "max_error_rate", "max_shed_rate",
                "allowed_error_codes", "p75_ms",
            ]),
            st.one_of(
                st.floats(allow_nan=True, allow_infinity=True),
                st.integers(-5, 5), st.booleans(),
                st.lists(st.text(max_size=6), max_size=3),
            ),
            max_size=4,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_slo_table_garbage(self, slo):
        from repro.scenario import parse_scenario

        try:
            spec = parse_scenario(
                {"name": "fuzz", "targets": ["peres"], "slo": slo}
            )
        except LIBRARY_ERRORS:
            return
        for bar in (spec.slo.max_error_rate, spec.slo.max_shed_rate):
            assert bar is None or 0 <= bar <= 1


class TestCircuitRecordFuzz:
    @given(
        record=st.fixed_dictionaries(
            {},
            optional={
                "n_qubits": st.one_of(st.integers(-2, 5), st.text(max_size=3)),
                "gates": st.lists(text, max_size=4),
            },
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_malformed_records_rejected_cleanly(self, record):
        try:
            circuit = circuit_from_dict(record)
        except LIBRARY_ERRORS:
            return
        assert isinstance(circuit, Circuit)
