"""A placed elementary gate on an n-qubit register.

Follows the paper's subscript convention: the **first** subscript is the
data (changed) wire, the **second** is the control wire.  ``V_BA`` applies
V to qubit B when qubit A is 1 (Figure 2a); ``F_CA`` XORs A into C
(Figure 2c).

Every gate carries two consistent semantics:

* *quaternary*: a map on :class:`~repro.mvl.patterns.Pattern` values with
  the paper's don't-care convention (identity when a control -- or either
  Feynman operand -- is non-binary), turning the gate into a permutation
  of any :class:`~repro.mvl.labels.LabelSpace`;
* *unitary*: the exact complex matrix on the full Hilbert space.

The strict application :meth:`Gate.strict_apply` refuses the don't-care
cases instead of faking identity; simulators use it to prove a cascade
never leaves the regime where the two semantics agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import InvalidGateError, NonBinaryControlError
from repro.gates.kinds import GateKind
from repro.linalg.constants import X, V, VDAG, cnot_matrix, controlled, single_qubit
from repro.linalg.matrix import Matrix
from repro.mvl.labels import LabelSpace
from repro.mvl.patterns import Pattern
from repro.mvl.values import Qv, apply_not, apply_v, apply_vdag
from repro.perm.permutation import Permutation


def wire_letter(wire: int) -> str:
    """Paper-style wire naming: 0 -> A, 1 -> B, 2 -> C, ..."""
    return chr(ord("A") + wire)


@dataclass(frozen=True)
class Gate:
    """An elementary gate placed on specific wires.

    Args:
        kind: the gate alphabet member.
        target: the data wire (the wire that changes).
        control: the control wire for 2-qubit gates, ``None`` for NOT.
        n_qubits: register width the gate lives on.
    """

    kind: GateKind
    target: int
    control: int | None
    n_qubits: int

    def __post_init__(self) -> None:
        if not 0 <= self.target < self.n_qubits:
            raise InvalidGateError(
                f"target {self.target} out of range for {self.n_qubits} qubits"
            )
        if self.kind.is_two_qubit:
            if self.control is None:
                raise InvalidGateError(f"{self.kind} gate requires a control wire")
            if not 0 <= self.control < self.n_qubits:
                raise InvalidGateError(
                    f"control {self.control} out of range for {self.n_qubits} qubits"
                )
            if self.control == self.target:
                raise InvalidGateError("control and target wires must differ")
        elif self.control is not None:
            raise InvalidGateError("NOT gate takes no control wire")

    # -- constructors --------------------------------------------------------

    @classmethod
    def v(cls, target: int, control: int, n_qubits: int) -> "Gate":
        """Controlled-V with the given data and control wires."""
        return cls(GateKind.V, target, control, n_qubits)

    @classmethod
    def vdag(cls, target: int, control: int, n_qubits: int) -> "Gate":
        """Controlled-V+ with the given data and control wires."""
        return cls(GateKind.VDAG, target, control, n_qubits)

    @classmethod
    def cnot(cls, target: int, control: int, n_qubits: int) -> "Gate":
        """Feynman gate: target ^= control."""
        return cls(GateKind.CNOT, target, control, n_qubits)

    @classmethod
    def not_(cls, target: int, n_qubits: int) -> "Gate":
        """1-qubit NOT on *target*."""
        return cls(GateKind.NOT, target, None, n_qubits)

    @classmethod
    def from_name(cls, name: str, n_qubits: int) -> "Gate":
        """Parse a paper-style name such as ``V_BA``, ``V+_AB``, ``F_CA``, ``N_B``."""
        try:
            kind_text, wires = name.split("_")
            kind = GateKind(kind_text)
            target = ord(wires[0]) - ord("A")
            if kind is GateKind.NOT:
                if len(wires) != 1:
                    raise ValueError
                return cls(kind, target, None, n_qubits)
            if len(wires) != 2:
                raise ValueError
            control = ord(wires[1]) - ord("A")
            return cls(kind, target, control, n_qubits)
        except (ValueError, KeyError, IndexError):
            raise InvalidGateError(f"cannot parse gate name {name!r}") from None

    # -- identity --------------------------------------------------------------

    @property
    def name(self) -> str:
        """Paper-style name: kind + data wire + control wire (``V_BA``)."""
        if self.kind is GateKind.NOT:
            return f"N_{wire_letter(self.target)}"
        return (
            f"{self.kind.value}_"
            f"{wire_letter(self.target)}{wire_letter(self.control)}"
        )

    def __str__(self) -> str:
        return self.name

    # -- relations ----------------------------------------------------------------

    def dagger(self) -> "Gate":
        """The Hermitian adjoint gate (V <-> V+; CNOT/NOT self-adjoint)."""
        return Gate(self.kind.adjoint_kind, self.target, self.control, self.n_qubits)

    def relabeled(self, wire_map: dict[int, int]) -> "Gate":
        """Move the gate to new wires (used for qubit-permutation orbits)."""
        control = None if self.control is None else wire_map[self.control]
        return Gate(self.kind, wire_map[self.target], control, self.n_qubits)

    @property
    def constrained_wires(self) -> tuple[int, ...]:
        """Wires that must be binary for the gate to act faithfully.

        For controlled gates only the control wire; for Feynman gates both
        operands (the paper's N_AB-style banned sets); NOT acts exactly on
        every quaternary value so it is never constrained.
        """
        if self.kind.is_controlled:
            return (self.control,)
        if self.kind is GateKind.CNOT:
            return (self.target, self.control)
        return ()

    # -- quaternary semantics ---------------------------------------------------------

    def apply(self, pattern: Pattern) -> Pattern:
        """Apply with the paper's don't-care convention.

        When a constrained wire is non-binary the gate acts as identity,
        which is exactly how the paper completes the truth table to make
        gates permutations ("when the control bit is equal to V0 or V1,
        the data bit will keep its value unchanged").
        """
        if self.kind is GateKind.NOT:
            return pattern.with_value(self.target, apply_not(pattern[self.target]))
        if self.kind is GateKind.CNOT:
            t, c = pattern[self.target], pattern[self.control]
            if t.is_binary and c.is_binary:
                return pattern.with_value(self.target, Qv(t.bit ^ c.bit))
            return pattern
        # controlled V / V+
        control_value = pattern[self.control]
        if control_value is Qv.ONE:
            action = apply_v if self.kind is GateKind.V else apply_vdag
            return pattern.with_value(self.target, action(pattern[self.target]))
        return pattern

    def strict_apply(self, pattern: Pattern) -> Pattern:
        """Apply, refusing the don't-care cases.

        Raises:
            NonBinaryControlError: when a constrained wire carries V0/V1,
                i.e. when :meth:`apply` would have silently used the
                identity convention that has no physical justification.
        """
        for wire in self.constrained_wires:
            if not pattern[wire].is_binary:
                raise NonBinaryControlError(
                    f"gate {self.name}: wire {wire_letter(wire)} carries "
                    f"{pattern[wire]} in pattern {pattern}"
                )
        return self.apply(pattern)

    def permutation(self, space: LabelSpace) -> Permutation:
        """The gate as a permutation of a label space."""
        if space.n_qubits != self.n_qubits:
            raise InvalidGateError(
                f"gate on {self.n_qubits} qubits vs space on {space.n_qubits}"
            )
        return Permutation.from_images(space.images_from_map(self.apply))

    # -- unitary semantics ---------------------------------------------------------------

    @cached_property
    def unitary(self) -> Matrix:
        """The exact unitary on the full 2**n-dimensional Hilbert space."""
        if self.kind is GateKind.NOT:
            return single_qubit(X, self.target, self.n_qubits)
        if self.kind is GateKind.CNOT:
            return cnot_matrix(self.target, self.control, self.n_qubits)
        operator = V if self.kind is GateKind.V else VDAG
        return controlled(operator, self.target, self.control, self.n_qubits)
