"""Unit tests for probabilistic synthesis (repro.core.probabilistic) -- Sec. 4."""

import pytest
from fractions import Fraction

from repro.errors import CostBoundExceededError, SpecificationError
from repro.core.probabilistic import (
    ProbabilisticSpec,
    express_probabilistic,
)
from repro.core.search import CascadeSearch
from repro.gates import named
from repro.mvl.patterns import Pattern, binary_patterns
from repro.mvl.values import Qv


def v_spec_3q():
    """enable=A; when A=1, wire B becomes V(B): the 1-bit controlled RNG."""
    outputs = []
    for p in binary_patterns(3):
        if p[0] is Qv.ONE:
            from repro.mvl.values import apply_v

            outputs.append(p.with_value(1, apply_v(p[1])))
        else:
            outputs.append(p)
    return ProbabilisticSpec(tuple(outputs))


class TestSpecValidation:
    def test_needs_power_of_two_rows(self):
        with pytest.raises(SpecificationError):
            ProbabilisticSpec((Pattern([0]), Pattern([1]), Pattern([0, 1])))

    def test_row_count_must_match_width(self):
        with pytest.raises(SpecificationError):
            ProbabilisticSpec((Pattern([0, 0]), Pattern([0, 1])))

    def test_mixed_width_rows_rejected(self):
        with pytest.raises(SpecificationError):
            ProbabilisticSpec(
                (Pattern([0]), Pattern([1, 0]))
            )

    def test_from_strings(self):
        spec = ProbabilisticSpec.from_strings(["0", "1"])
        assert spec.n_qubits == 1

    def test_from_bit_distributions(self):
        spec = ProbabilisticSpec.from_bit_distributions(
            [(0, 0), (0, 1), (1, "?"), (1, "?")]
        )
        assert spec.outputs[2] == Pattern([1, Qv.V0])

    def test_from_bit_distributions_bad_symbol(self):
        with pytest.raises(SpecificationError):
            ProbabilisticSpec.from_bit_distributions([(0, "x"), (0, 1)])

    def test_deterministic_wrapper(self):
        spec = ProbabilisticSpec.deterministic(named.TOFFOLI, 3)
        assert spec.is_deterministic()
        assert spec.outputs[6] == Pattern([1, 1, 1])


class TestFeasibility:
    def test_zero_row_must_be_fixed(self, library3):
        outputs = list(binary_patterns(3))
        outputs[0], outputs[1] = outputs[1], outputs[0]
        spec = ProbabilisticSpec(tuple(outputs))
        with pytest.raises(SpecificationError):
            spec.validate_feasible(library3)

    def test_duplicate_outputs_rejected(self, library3):
        outputs = list(binary_patterns(3))
        outputs[3] = outputs[2]
        spec = ProbabilisticSpec(tuple(outputs))
        with pytest.raises(SpecificationError):
            spec.validate_feasible(library3)

    def test_unreachable_pattern_rejected(self, library3):
        # (V0, 0, 0) has no pure 1: outside the reachable label space.
        outputs = list(binary_patterns(3))
        outputs[4] = Pattern([Qv.V0, 0, 0])
        spec = ProbabilisticSpec(tuple(outputs))
        with pytest.raises(SpecificationError):
            spec.validate_feasible(library3)

    def test_width_mismatch_rejected(self, library3):
        spec = ProbabilisticSpec.from_strings(["0", "1"])
        with pytest.raises(SpecificationError):
            spec.validate_feasible(library3)

    def test_feasible_spec_returns_images(self, library3):
        images = v_spec_3q().validate_feasible(library3)
        assert len(images) == 8
        assert images[0] == 0


class TestMeasurementDistribution:
    def test_deterministic_rows(self):
        spec = v_spec_3q()
        assert spec.measurement_distribution(0) == {(0, 0, 0): Fraction(1)}

    def test_random_rows_split(self):
        spec = v_spec_3q()
        dist = spec.measurement_distribution(4)  # input (1,0,0)
        assert dist == {
            (1, 0, 0): Fraction(1, 2),
            (1, 1, 0): Fraction(1, 2),
        }


class TestSynthesis:
    def test_single_v_gate_spec(self, library3, search3):
        result = express_probabilistic(v_spec_3q(), library3, search=search3)
        assert result.cost == 1
        assert result.circuit.names() == ("V_BA",)

    def test_identity_spec_costs_zero(self, library3, search3):
        spec = ProbabilisticSpec(tuple(binary_patterns(3)))
        result = express_probabilistic(spec, library3, search=search3)
        assert result.cost == 0
        assert len(result.circuit) == 0

    def test_deterministic_spec_matches_mce(self, library3, search3):
        spec = ProbabilisticSpec.deterministic(named.PERES, 3)
        result = express_probabilistic(spec, library3, search=search3)
        assert result.cost == 4
        assert result.circuit.binary_permutation() == named.PERES

    def test_synthesized_circuit_realizes_spec_exactly(self, library3, search3):
        spec = v_spec_3q()
        result = express_probabilistic(spec, library3, search=search3)
        for index, pattern in enumerate(binary_patterns(3)):
            assert result.circuit.strict_apply(pattern) == spec.outputs[index]

    def test_all_implementations(self, library3, search3):
        results = express_probabilistic(
            v_spec_3q(), library3, search=search3, all_implementations=True
        )
        assert isinstance(results, list)
        assert all(r.cost == results[0].cost for r in results)

    def test_cost_bound_exceeded(self, library3):
        # A two-random-bit generator needs cost 2 > bound 1.
        from repro.mvl.values import apply_v

        outputs = []
        for p in binary_patterns(3):
            if p[0] is Qv.ONE:
                outputs.append(
                    p.with_value(1, apply_v(p[1])).with_value(2, apply_v(p[2]))
                )
            else:
                outputs.append(p)
        spec = ProbabilisticSpec(tuple(outputs))
        with pytest.raises(CostBoundExceededError):
            express_probabilistic(spec, library3, cost_bound=1)

    def test_search_without_parents_rejected(self, library3):
        search = CascadeSearch(library3, track_parents=False)
        with pytest.raises(SpecificationError):
            express_probabilistic(v_spec_3q(), library3, search=search)

    def test_result_str(self, library3, search3):
        result = express_probabilistic(v_spec_3q(), library3, search=search3)
        assert "cost 1" in str(result)
