"""Deterministic fault injection for chaos-testing the serving fleet.

A fault-tolerance claim is only as good as the faults it was proved
against, so ``repro serve`` grows a ``--fault SPEC[,SPEC...]`` flag
that injects failures *inside* a real server process -- the router,
supervisor and clients under test see exactly what a production crash,
hang, brown-out or flaky network would show them, over the real
sockets and the real wire protocol.

Fault specs (grammar: ``kind:arg``, comma-separated to combine):

``exit-after:N``
    Serve *N* requests normally, then kill the process abruptly
    (``os._exit``) when request *N+1* arrives -- before any response
    byte is written.  Models a crash mid-request: the peer sees the
    connection drop with a request outstanding.
``hang:OP``
    Requests for operation *OP* (``synth``, ``synth-batch``,
    ``cost-table``, ``store-info``, ``healthz``, or ``any``) never get
    a response; the connection stays open forever.  Models a wedged
    worker or a black-holed disk read -- only timeouts save the caller.
``slow:MS``
    Every response is delayed by *MS* milliseconds before the request
    is handled.  Models a brown-out (overloaded CPU, slow disk).
``reset-conn:P``
    With probability *P* per request, abort the connection instead of
    responding.  Models flaky networking / a peer RSTing under load.

Determinism: the only randomness (``reset-conn``) draws from a seeded
``random.Random`` (``--fault-seed``), and requests are counted in
event-loop arrival order, so a given (seed, request sequence) always
injects the same faults -- tests can assert exact behavior instead of
retrying until the chaos cooperates.

The injector is consulted by :class:`repro.server.app.ReproServer`
once per decoded request, on the event loop, via
:meth:`FaultInjector.before_handle`.
"""

from __future__ import annotations

import asyncio
import os
import random
from dataclasses import dataclass

from repro.errors import SpecificationError
from repro.server.protocol import OPERATIONS

#: The fault kinds ``parse_fault_specs`` accepts.
FAULT_KINDS = ("exit-after", "hang", "slow", "reset-conn")

#: Process exit status used by ``exit-after`` crashes.  Distinct from
#: 0/1 so a supervisor (or test) can tell an injected crash from a
#: clean shutdown or a startup error.
CRASH_EXIT_CODE = 70


class ConnectionResetFault(Exception):
    """Internal signal: abort this connection instead of responding."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: a kind plus its single argument."""

    kind: str
    #: ``hang``: the op to hang (``"any"`` matches everything).
    op: str | None = None
    #: ``exit-after``: requests served before the crash.
    count: int | None = None
    #: ``slow``: per-request delay in milliseconds.
    delay_ms: float | None = None
    #: ``reset-conn``: per-request reset probability in [0, 1].
    probability: float | None = None

    def describe(self) -> str:
        if self.kind == "exit-after":
            return f"exit-after:{self.count}"
        if self.kind == "hang":
            return f"hang:{self.op}"
        if self.kind == "slow":
            return f"slow:{self.delay_ms:g}"
        return f"reset-conn:{self.probability:g}"


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse one ``kind:arg`` fault spec.

    Raises:
        SpecificationError: unknown kind, missing or malformed argument.
    """
    kind, sep, arg = text.strip().partition(":")
    if not sep or not arg:
        raise SpecificationError(
            f"bad fault spec {text!r}: expected KIND:ARG with KIND one of "
            + ", ".join(FAULT_KINDS)
        )
    if kind == "exit-after":
        try:
            count = int(arg)
        except ValueError:
            raise SpecificationError(
                f"exit-after needs an integer request count, got {arg!r}"
            ) from None
        if count < 0:
            raise SpecificationError("exit-after count must be >= 0")
        return FaultSpec(kind=kind, count=count)
    if kind == "hang":
        op = arg.strip().lower()
        if op != "any" and op not in OPERATIONS:
            raise SpecificationError(
                f"hang needs an operation ({', '.join(OPERATIONS)}) or "
                f"'any', got {arg!r}"
            )
        return FaultSpec(kind=kind, op=op)
    if kind == "slow":
        try:
            delay_ms = float(arg)
        except ValueError:
            raise SpecificationError(
                f"slow needs a delay in milliseconds, got {arg!r}"
            ) from None
        if delay_ms < 0:
            raise SpecificationError("slow delay must be >= 0")
        return FaultSpec(kind=kind, delay_ms=delay_ms)
    if kind == "reset-conn":
        try:
            probability = float(arg)
        except ValueError:
            raise SpecificationError(
                f"reset-conn needs a probability in [0, 1], got {arg!r}"
            ) from None
        if not 0.0 <= probability <= 1.0:
            raise SpecificationError(
                f"reset-conn probability {probability} outside [0, 1]"
            )
        return FaultSpec(kind=kind, probability=probability)
    raise SpecificationError(
        f"unknown fault kind {kind!r}; expected one of "
        + ", ".join(FAULT_KINDS)
    )


def parse_fault_specs(text: str) -> list[FaultSpec]:
    """Parse a comma-separated ``--fault`` argument into specs."""
    specs = [parse_fault_spec(part) for part in text.split(",") if part.strip()]
    if not specs:
        raise SpecificationError(f"fault spec {text!r} names no faults")
    return specs


class FaultInjector:
    """Applies parsed fault specs to the live request stream.

    One injector serves one server process; all state (the request
    counter, the seeded RNG) is touched only on the event-loop thread,
    mirroring the service's counter discipline.
    """

    def __init__(self, specs: list[FaultSpec], seed: int = 0):
        self._specs = list(specs)
        self._rng = random.Random(seed)
        self._requests = 0

    @property
    def requests_seen(self) -> int:
        return self._requests

    def describe(self) -> str:
        return ",".join(spec.describe() for spec in self._specs)

    async def before_handle(self, op: str) -> None:
        """Consult the faults for one decoded request (event loop only).

        May delay (``slow``), never return (``hang``), terminate the
        process (``exit-after``) or raise
        :class:`ConnectionResetFault` (``reset-conn``) -- the caller
        aborts the transport on the latter.
        """
        self._requests += 1
        for spec in self._specs:
            if spec.kind == "exit-after" and self._requests > spec.count:
                # A real crash: no flushes, no goodbyes, no response
                # for the in-flight request.
                os._exit(CRASH_EXIT_CODE)
            if spec.kind == "reset-conn" and (
                self._rng.random() < spec.probability
            ):
                raise ConnectionResetFault(op)
            if spec.kind == "slow" and spec.delay_ms:
                await asyncio.sleep(spec.delay_ms / 1e3)
            if spec.kind == "hang" and spec.op in ("any", op):
                # Wedged forever; only the peer's timeout ends this.
                await asyncio.Event().wait()


def build_injector(
    fault: str | None, seed: int = 0
) -> FaultInjector | None:
    """``--fault``/``--fault-seed`` CLI values -> injector (or None)."""
    if fault is None:
        return None
    return FaultInjector(parse_fault_specs(fault), seed=seed)
