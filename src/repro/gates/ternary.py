"""Di & Wei's elementary ternary gate library (arXiv:1105.5485).

The ternary analogue of the paper's 18-gate binary library.  Wire values
are qutrit basis digits {0, 1, 2}; the alphabet is

* the five non-trivial single-qutrit permutation gates -- the cyclic
  shifts ``X+1`` / ``X+2`` and the transpositions ``X01`` / ``X02`` /
  ``X12`` -- each at cost 1, on every wire;
* their Muthukrishnan--Stroud controlled versions (the local op fires on
  the target iff the control wire carries digit 2), each at cost 2, on
  every ordered (target, control) wire pair.

On ``width`` wires that is ``5 * width`` single-qutrit gates plus
``5 * width * (width - 1)`` controlled gates (20 gates for the default
width 2).  The library acts on the full digit label space of
``3**width`` labels; there is no reduced space and no banned set -- every
digit is classical, so every cascade is a "reasonable product" and the
engine's binary sub-domain S degenerates to the whole space.
"""

from __future__ import annotations

from repro.errors import InvalidGateError
from repro.gates.library import GateLibrary
from repro.gates.mv import mv_library_gates
from repro.mvl.labels import label_space

#: Store-header family identifier for :func:`ternary_library` builds.
TERNARY_FAMILY = "ternary-diwei"


def ternary_library(width: int = 2) -> GateLibrary:
    """The Di & Wei elementary gate library on *width* qutrit wires.

    Raises:
        InvalidGateError: width < 2 (controlled gates need two wires) or
            width > 5 (3**width exceeds the kernel's 256-label cap).
    """
    if width < 2:
        raise InvalidGateError(
            "the ternary library needs at least 2 wires for its "
            "controlled gates"
        )
    space = label_space(width, radix=3)
    return GateLibrary.from_gates(
        mv_library_gates(width, 3), space, family=TERNARY_FAMILY
    )
