"""Persistent closure store: save an expanded search once, query forever.

The cost-bounded cascade closure for a fixed (library, cost model) pair
is a pure artifact: it never changes, and every MCE/FMCF query is a
lookup against it.  This module serializes a :class:`CascadeSearch`
snapshot to a compact versioned binary format so the closure is computed
once (``repro precompute``) and any number of synthesis queries are
answered against the loaded store (``repro synth --store``) without
re-running the BFS.

Layout of a store file::

    magic   8 bytes   b"RPROCLS\\x01"
    hlen    4 bytes   little-endian header length
    header  hlen      JSON: format version, library/cost fingerprints,
                      space geometry, level sizes, payload sha256
    payload           level records then parent records

Each level record is ``degree`` permutation bytes followed by the
S-image bitmask (``mask_bytes`` little-endian bytes); records appear in
level-major discovery order, so a permutation's position in the stream
is its *global index*.  When parents are tracked, one
``(parent global index: u32, library gate index: u16)`` pair follows for
every non-identity permutation, in the same global order.

Integrity is layered: the payload is checksummed (sha256, verified on
load), the header pins fingerprints of the gate library and cost model
(mismatches are refused with :class:`StoreMismatchError` -- a closure
loaded against the wrong library would silently return wrong costs),
and :meth:`CascadeSearch.from_state` re-validates the structural
invariants (identity level, no duplicates, cost-decreasing parents).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StoreError, StoreMismatchError
from repro.core.cost import CostModel, UNIT_COST
from repro.core.search import CascadeSearch, SearchState
from repro.gates.kinds import GateKind
from repro.gates.library import GateLibrary
from repro.mvl.labels import label_space

MAGIC = b"RPROCLS\x01"
FORMAT_VERSION = 1

_PARENT_RECORD = 6  # u32 parent index + u16 gate index


def _int_bytes(value: int) -> bytes:
    """Minimal little-endian encoding of a non-negative int (>= 1 byte)."""
    return value.to_bytes(max(1, (value.bit_length() + 7) // 8), "little")


def library_fingerprint(library: GateLibrary) -> str:
    """Content hash of everything the search reads from a library.

    Covers the label-space geometry and, per gate in index order, the
    name, permutation and banned mask -- so two libraries fingerprint
    equal exactly when a closure expanded under one is valid for the
    other.
    """
    space = library.space
    digest = hashlib.sha256()
    digest.update(
        f"space:{space.n_qubits}:{space.size}:{space.n_binary}:"
        f"{space.reduced}:{space.ordering}:{space.s_mask}".encode()
    )
    for entry in library.gates:
        digest.update(b"\x00" + entry.name.encode())
        digest.update(entry.permutation.images)
        digest.update(_int_bytes(entry.banned_mask))
    return digest.hexdigest()


def cost_model_fingerprint(cost_model: CostModel) -> str:
    """Content hash of a cost model's four integer weights."""
    text = (
        f"cost:{cost_model.v_cost}:{cost_model.vdag_cost}:"
        f"{cost_model.cnot_cost}:{cost_model.not_cost}"
    )
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class StoreHeader:
    """Parsed metadata block of a closure store.

    Carries everything needed to rebuild the matching library and cost
    model (the store is self-describing for the default gate alphabet)
    plus the size/checksum data that frames the payload.
    """

    format_version: int
    library_fingerprint: str
    cost_fingerprint: str
    n_qubits: int
    degree: int
    n_binary: int
    mask_bytes: int
    space_reduced: bool
    space_ordering: str
    gate_kinds: tuple[str, ...]
    cost_model: CostModel
    expanded_to: int
    level_sizes: tuple[int, ...]
    track_parents: bool
    elapsed_seconds: float
    payload_size: int
    payload_sha256: str

    @property
    def total_seen(self) -> int:
        return sum(self.level_sizes)

    def rebuild_library(self) -> GateLibrary:
        """The default-alphabet library this store was expanded under."""
        try:
            kinds = tuple(GateKind[name] for name in self.gate_kinds)
        except KeyError as exc:
            raise StoreError(f"store names unknown gate kind {exc}") from None
        space = label_space(
            self.n_qubits, reduced=self.space_reduced, ordering=self.space_ordering
        )
        return GateLibrary(self.n_qubits, space=space, kinds=kinds)


def _header_dict(header: StoreHeader) -> dict:
    cm = header.cost_model
    return {
        "format": header.format_version,
        "library_fingerprint": header.library_fingerprint,
        "cost_fingerprint": header.cost_fingerprint,
        "n_qubits": header.n_qubits,
        "degree": header.degree,
        "n_binary": header.n_binary,
        "mask_bytes": header.mask_bytes,
        "space_reduced": header.space_reduced,
        "space_ordering": header.space_ordering,
        "gate_kinds": list(header.gate_kinds),
        "cost_model": {
            "v_cost": cm.v_cost,
            "vdag_cost": cm.vdag_cost,
            "cnot_cost": cm.cnot_cost,
            "not_cost": cm.not_cost,
        },
        "expanded_to": header.expanded_to,
        "level_sizes": list(header.level_sizes),
        "track_parents": header.track_parents,
        "elapsed_seconds": header.elapsed_seconds,
        "payload_size": header.payload_size,
        "payload_sha256": header.payload_sha256,
    }


def _header_from_dict(data: dict) -> StoreHeader:
    try:
        cm = data["cost_model"]
        return StoreHeader(
            format_version=int(data["format"]),
            library_fingerprint=str(data["library_fingerprint"]),
            cost_fingerprint=str(data["cost_fingerprint"]),
            n_qubits=int(data["n_qubits"]),
            degree=int(data["degree"]),
            n_binary=int(data["n_binary"]),
            mask_bytes=int(data["mask_bytes"]),
            space_reduced=bool(data["space_reduced"]),
            space_ordering=str(data["space_ordering"]),
            gate_kinds=tuple(str(k) for k in data["gate_kinds"]),
            cost_model=CostModel(
                v_cost=int(cm["v_cost"]),
                vdag_cost=int(cm["vdag_cost"]),
                cnot_cost=int(cm["cnot_cost"]),
                not_cost=int(cm["not_cost"]),
            ),
            expanded_to=int(data["expanded_to"]),
            level_sizes=tuple(int(s) for s in data["level_sizes"]),
            track_parents=bool(data["track_parents"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
            payload_size=int(data["payload_size"]),
            payload_sha256=str(data["payload_sha256"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreError(f"malformed store header: {exc}") from None


# -- encoding --------------------------------------------------------------------------


def _library_kinds(library: GateLibrary) -> tuple[str, ...]:
    """Gate kinds in construction order (gate indices depend on it)."""
    kinds: list[str] = []
    for entry in library.gates:
        name = entry.gate.kind.name
        if name in kinds:
            break
        kinds.append(name)
    return tuple(kinds)


def dump_search(search: CascadeSearch) -> bytes:
    """Serialize a search's accumulated closure to store bytes."""
    state = search.export_state()
    library = search.library
    cost_model = search.cost_model
    degree = library.space.size
    mask_bytes = (degree + 7) // 8

    chunks: list[bytes] = []
    index_of: dict[bytes, int] = {}
    for level in state.levels:
        for perm, mask in level:
            index_of[perm] = len(index_of)
            chunks.append(perm)
            chunks.append(mask.to_bytes(mask_bytes, "little"))
    if state.parents is not None:
        for level in state.levels[1:]:
            for perm, _mask in level:
                parent, gate_index = state.parents[perm]
                chunks.append(index_of[parent].to_bytes(4, "little"))
                chunks.append(gate_index.to_bytes(2, "little"))
    payload = b"".join(chunks)

    header = StoreHeader(
        format_version=FORMAT_VERSION,
        library_fingerprint=library_fingerprint(library),
        cost_fingerprint=cost_model_fingerprint(cost_model),
        n_qubits=library.n_qubits,
        degree=degree,
        n_binary=library.space.n_binary,
        mask_bytes=mask_bytes,
        space_reduced=library.space.reduced,
        space_ordering=library.space.ordering,
        gate_kinds=_library_kinds(library),
        cost_model=cost_model,
        expanded_to=state.expanded_to,
        level_sizes=state.level_sizes,
        track_parents=state.parents is not None,
        elapsed_seconds=state.elapsed_seconds,
        payload_size=len(payload),
        payload_sha256=hashlib.sha256(payload).hexdigest(),
    )
    header_blob = json.dumps(_header_dict(header), separators=(",", ":")).encode()
    return MAGIC + len(header_blob).to_bytes(4, "little") + header_blob + payload


def save_search(search: CascadeSearch, path: str | Path) -> StoreHeader:
    """Write a search's closure to *path*; returns the store header."""
    data = dump_search(search)
    Path(path).write_bytes(data)
    return _split(data)[0]


# -- decoding --------------------------------------------------------------------------


def _split(data: bytes) -> tuple[StoreHeader, memoryview]:
    """Validate framing + checksum; return (header, payload view)."""
    if len(data) < len(MAGIC) + 4 or data[: len(MAGIC)] != MAGIC:
        raise StoreError("not a closure store (bad magic)")
    hlen = int.from_bytes(data[len(MAGIC) : len(MAGIC) + 4], "little")
    header_start = len(MAGIC) + 4
    if len(data) < header_start + hlen:
        raise StoreError("truncated store header")
    try:
        raw = json.loads(data[header_start : header_start + hlen])
    except ValueError:
        raise StoreError("store header is not valid JSON") from None
    header = _header_from_dict(raw)
    if header.format_version != FORMAT_VERSION:
        raise StoreError(
            f"store format {header.format_version} is not supported "
            f"(this build reads format {FORMAT_VERSION})"
        )
    payload = memoryview(data)[header_start + hlen :]
    if len(payload) != header.payload_size:
        raise StoreError(
            f"store payload is {len(payload)} bytes, header says "
            f"{header.payload_size} (truncated or padded file)"
        )
    if hashlib.sha256(payload).hexdigest() != header.payload_sha256:
        raise StoreError("store payload fails its sha256 checksum")
    record = header.degree + header.mask_bytes
    expected = header.total_seen * record
    if header.track_parents:
        expected += (header.total_seen - 1) * _PARENT_RECORD
    if header.payload_size != expected:
        raise StoreError(
            f"payload size {header.payload_size} inconsistent with "
            f"{header.total_seen} records of {record} bytes"
        )
    if len(header.level_sizes) != header.expanded_to + 1:
        raise StoreError(
            f"store claims bound {header.expanded_to} but lists "
            f"{len(header.level_sizes)} level sizes"
        )
    return header, payload


def _decode_state(header: StoreHeader, payload: memoryview) -> SearchState:
    degree = header.degree
    mask_bytes = header.mask_bytes
    record = degree + mask_bytes
    from_bytes = int.from_bytes

    perms: list[bytes] = []
    levels: list[tuple[tuple[bytes, int], ...]] = []
    offset = 0
    for size in header.level_sizes:
        level = []
        for _ in range(size):
            perm = bytes(payload[offset : offset + degree])
            mask = from_bytes(payload[offset + degree : offset + record], "little")
            level.append((perm, mask))
            perms.append(perm)
            offset += record
        levels.append(tuple(level))

    parents: dict[bytes, tuple[bytes, int]] | None = None
    if header.track_parents:
        parents = {}
        total = len(perms)
        for child_index in range(1, total):
            parent_index = from_bytes(payload[offset : offset + 4], "little")
            gate_index = from_bytes(payload[offset + 4 : offset + 6], "little")
            offset += _PARENT_RECORD
            if parent_index >= child_index:
                raise StoreError(
                    f"parent index {parent_index} does not precede its "
                    f"child {child_index}"
                )
            parents[perms[child_index]] = (perms[parent_index], gate_index)

    return SearchState(
        expanded_to=header.expanded_to,
        levels=tuple(levels),
        parents=parents,
        elapsed_seconds=header.elapsed_seconds,
    )


def read_header(path: str | Path) -> StoreHeader:
    """Read only the metadata block of a store file (cheap peek).

    The payload is not read or verified; use :func:`load_search` for a
    fully checked load.
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise StoreError("not a closure store (bad magic)")
        hlen_bytes = handle.read(4)
        if len(hlen_bytes) < 4:
            raise StoreError("truncated store header")
        hlen = int.from_bytes(hlen_bytes, "little")
        blob = handle.read(hlen)
    if len(blob) < hlen:
        raise StoreError("truncated store header")
    try:
        raw = json.loads(blob)
    except ValueError:
        raise StoreError("store header is not valid JSON") from None
    return _header_from_dict(raw)


def _check_compatible(
    header: StoreHeader, library: GateLibrary, cost_model: CostModel
) -> None:
    expected_lib = library_fingerprint(library)
    if header.library_fingerprint != expected_lib:
        raise StoreMismatchError(
            f"store was expanded under library fingerprint "
            f"{header.library_fingerprint[:12]}..., the given "
            f"{library!r} fingerprints {expected_lib[:12]}...; "
            "rebuild the store with `repro precompute` for this library"
        )
    expected_cost = cost_model_fingerprint(cost_model)
    if header.cost_fingerprint != expected_cost:
        raise StoreMismatchError(
            f"store was expanded under cost model {header.cost_model}, "
            f"refusing to serve queries for {cost_model}"
        )


def _load_split(
    header: StoreHeader,
    payload: memoryview,
    library: GateLibrary,
    cost_model: CostModel,
) -> CascadeSearch:
    """Decode an already-validated (header, payload) pair."""
    _check_compatible(header, library, cost_model)
    state = _decode_state(header, payload)
    return CascadeSearch.from_state(library, state, cost_model)


def loads_search(
    data: bytes,
    library: GateLibrary,
    cost_model: CostModel = UNIT_COST,
) -> CascadeSearch:
    """Rebuild a search from store bytes (see :func:`load_search`)."""
    header, payload = _split(data)
    return _load_split(header, payload, library, cost_model)


def load_search(
    path: str | Path,
    library: GateLibrary,
    cost_model: CostModel = UNIT_COST,
) -> CascadeSearch:
    """Load a store file back into a ready-to-query :class:`CascadeSearch`.

    Raises:
        StoreError: corrupted, truncated or unsupported file.
        StoreMismatchError: the store was expanded under a different
            library or cost model than the ones given.
    """
    return loads_search(Path(path).read_bytes(), library, cost_model)


def open_store(
    path: str | Path,
) -> tuple[StoreHeader, GateLibrary, CascadeSearch]:
    """Self-describing load: rebuild the library from the store header.

    Convenience for the CLI and services that hold only a store path:
    the library and cost model are reconstructed from the header (this
    only works for default-alphabet libraries) and the fingerprints are
    still verified against the rebuilt objects.
    """
    data = Path(path).read_bytes()
    header, payload = _split(data)
    library = header.rebuild_library()
    search = _load_split(header, payload, library, header.cost_model)
    return header, library, search
