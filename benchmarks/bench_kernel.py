"""E-kernel -- vectorized vs byte-level closure expansion.

Measures the PR-2 tentpole: the NumPy expansion kernel
(``CascadeSearch(kernel="vector")``) against the seed
``bytes.translate`` loop (``kernel="translate"``) on the paper's full
cost-7 closure (~6.9e5 cascades, parent tracking on).  Both kernels
produce byte-identical levels and parent pointers (asserted here and
pinned by ``tests/test_kernels.py``); the acceptance bar is a >= 3x
end-to-end build speedup.

Runs are paired (translate then vector, repeated) and the best time per
kernel is reported, which cancels machine drift on shared runners.
Results are also written to ``BENCH_kernel.json`` at the repo root so
performance is trendable across PRs.

Run standalone (prints a small report)::

    PYTHONPATH=src python benchmarks/bench_kernel.py

or as a pytest module (asserts the speedup)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel.py -s

Markers: carries ``benchmark`` (timing-sensitive; excluded from the
default tier-1 selection, run explicitly or with ``-m benchmark``).
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from time import perf_counter

import pytest

from repro.core.search import CascadeSearch
from repro.gates.library import GateLibrary

COST_BOUND = 7
ROUNDS = 3
#: The pinned |B[k]| sizes (see tests/test_golden_tables.py).
GOLDEN_B = (1, 18, 162, 1017, 5364, 25761, 118888, 538191)

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def _build(library: GateLibrary, kernel: str) -> tuple[float, CascadeSearch]:
    started = perf_counter()
    search = CascadeSearch(library, track_parents=True, kernel=kernel)
    search.extend_to(COST_BOUND)
    return perf_counter() - started, search


def measure() -> dict:
    """Paired closure builds; returns the numbers dict."""
    library = GateLibrary(3)
    # Warm-up: one build pre-faults allocator pools so neither kernel
    # pays first-touch costs inside the timed region.
    _build(library, "vector")
    translate_times: list[float] = []
    vector_times: list[float] = []
    last_vector = last_translate = None
    for _ in range(ROUNDS):
        elapsed, last_translate = _build(library, "translate")
        translate_times.append(elapsed)
        elapsed, last_vector = _build(library, "vector")
        vector_times.append(elapsed)
    assert last_vector.stats().level_sizes == GOLDEN_B
    assert last_translate.stats().level_sizes == GOLDEN_B
    # The kernels must agree beyond counts: identical discovery order
    # and parent choice (a benchmark that drifted semantically would be
    # comparing different computations).
    for cost in (0, 1, 2, 3):
        assert last_vector.level(cost) == last_translate.level(cost)
    numbers = {
        "cost_bound": COST_BOUND,
        "closure_size": last_vector.total_seen(),
        "translate_s": min(translate_times),
        "vector_s": min(vector_times),
        "translate_runs_s": [round(t, 4) for t in translate_times],
        "vector_runs_s": [round(t, 4) for t in vector_times],
        "speedup": min(translate_times) / min(vector_times),
        "python": platform.python_version(),
        "numpy": __import__("numpy").__version__,
    }
    _JSON_PATH.write_text(json.dumps(numbers, indent=2) + "\n")
    return numbers


def report(numbers: dict) -> str:
    return (
        f"cost bound:            {numbers['cost_bound']:10d}\n"
        f"closure size:          {numbers['closure_size']:10d}\n"
        f"translate kernel:      {numbers['translate_s'] * 1e3:10.1f} ms\n"
        f"vector kernel:         {numbers['vector_s'] * 1e3:10.1f} ms\n"
        f"speedup:               {numbers['speedup']:10.2f} x\n"
        f"(wrote {_JSON_PATH.name})"
    )


@pytest.mark.benchmark
def test_vector_kernel_is_3x_faster_than_translate():
    numbers = measure()
    print("\n" + report(numbers))
    assert numbers["speedup"] >= 3.0, (
        f"vector kernel only {numbers['speedup']:.2f}x faster than the "
        "bytes.translate reference; the vectorized hot path regressed"
    )


if __name__ == "__main__":
    print(report(measure()))
    sys.exit(0)
