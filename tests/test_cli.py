"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestTable1:
    def test_prints_permutation(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "(3,7,4,8)" in out
        assert "V0" in out


class TestTable2:
    def test_small_bound(self, capsys):
        assert main(["table2", "--cost-bound", "2"]) == 0
        out = capsys.readouterr().out
        assert "|G[k]|" in out
        assert "24" in out

    def test_paper_pseudocode_flag(self, capsys):
        assert main(["table2", "--cost-bound", "3", "--paper-pseudocode"]) == 0
        out = capsys.readouterr().out
        assert "52" in out


class TestSynth:
    def test_named_target(self, capsys):
        assert main(["synth", "peres"]) == 0
        out = capsys.readouterr().out
        assert "cost 4" in out
        assert "verified" in out

    def test_cycle_notation_target(self, capsys):
        assert main(["synth", "(7,8)", "--cost-bound", "5"]) == 0
        out = capsys.readouterr().out
        assert "cost 5" in out

    def test_all_flag(self, capsys):
        assert main(["synth", "peres", "--all"]) == 0
        out = capsys.readouterr().out
        assert "2 implementation(s)" in out

    def test_bad_target_is_clean_error(self, capsys):
        assert main(["synth", "notagate"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err

    def test_cost_bound_exceeded_is_clean_error(self, capsys):
        assert main(["synth", "toffoli", "--cost-bound", "3"]) == 1
        err = capsys.readouterr().err
        assert "cost" in err


class TestOtherCommands:
    def test_banned_sets(self, capsys):
        assert main(["banned-sets"]) == 0
        out = capsys.readouterr().out
        assert "N_A" in out and "F_CB" in out

    def test_peres_family(self, capsys):
        assert main(["peres-family"]) == 0
        out = capsys.readouterr().out
        assert "60" in out and "24" in out
        assert "g1" in out

    def test_verify_gates(self, capsys):
        assert main(["verify-gates"]) == 0
        out = capsys.readouterr().out
        assert "372" in out

    def test_rng(self, capsys):
        assert main(["rng", "--bits", "16", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "16 quantum-random bits" in out

    def test_compare(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "peres" in out and "saving" in out

    def test_identities(self, capsys):
        assert main(["identities"]) == 0
        out = capsys.readouterr().out
        assert "cnot-emulation" in out
        assert "48 commuting pairs" in out

    def test_save_and_load_roundtrip(self, capsys, tmp_path):
        path = str(tmp_path / "peres.json")
        assert main(["synth", "peres", "--save", path]) == 0
        capsys.readouterr()
        assert main(["load", path]) == 0
        out = capsys.readouterr().out
        assert "(5,7,6,8)" in out and "re-verified" in out

    def test_load_missing_file_is_clean_error(self, capsys, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["load", str(tmp_path / "nope.json")])

    def test_load_tampered_file_is_clean_error(self, capsys, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "n_qubits": 3,
            "gates": ["F_BA"],
            "target": "(7,8)",
            "cost": 1,
        }))
        assert main(["load", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_synth_reports_depth(self, capsys):
        assert main(["synth", "peres"]) == 0
        assert "depth 4" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
