"""Smoke tests: every example script runs cleanly and prints its story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "peres_family.py",
        "quantum_random_machine.py",
        "cost_comparison.py",
        "toffoli_implementations.py",
        "beyond_the_paper.py",
    } <= names


@pytest.mark.slow
class TestExampleRuns:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Minimum quantum cost: 5" in out
        assert "Verified exactly: True" in out
        assert "All minimal implementations found: 4" in out

    def test_peres_family(self):
        out = run_example("peres_family.py")
        assert "CNOT-network members : 60" in out
        assert "control-using members: 24" in out
        assert "(5,7,6,8)" in out

    def test_quantum_random_machine(self):
        out = run_example("quantum_random_machine.py")
        assert "cost 2" in out
        assert "stationary distribution" in out
        assert "64 quantum-random bits" in out

    def test_cost_comparison(self):
        out = run_example("cost_comparison.py")
        assert "peres" in out
        assert "Direct synthesis is strictly cheaper on" in out
        assert "577" in out  # the classic NCT histogram tail

    def test_toffoli_implementations(self):
        out = run_example("toffoli_implementations.py")
        assert "4 minimal implementation(s)" in out
        assert "2 minimal implementation(s)" in out
        assert "MISMATCH" not in out

    def test_beyond_the_paper(self):
        out = run_example("beyond_the_paper.py")
        assert "|G[8]| = 444" in out
        assert "[1, 12, 96, 542, 2154]" in out
        assert "4.4332" in out
