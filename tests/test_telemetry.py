"""Telemetry-layer tests: registry, tracing, progress, tailing, e2e.

Unit-tests the Prometheus-text registry (byte-stable rendering, the
parser the CI smoke job uses), trace/span minting and wire validation,
the extracted access-log writer (now with drop/rotation counters), and
the precompute ProgressReporter (seeded-deterministic records; stores
byte-identical with and without one attached).  Then proves the layer
end to end: a live server answers ``GET /metrics`` with text that
parses and agrees with healthz, NDJSON and HTTP requests echo their
``trace_id`` (including into error payloads and the access log), and
one fleet request's trace id is recoverable from the router's access
log, the landing replica's access log, and the client-visible
response -- joined back together by ``repro tail``.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import socket
import tempfile
import threading
import time

import pytest

from repro._version import __version__
from repro.client import ServeClient, fetch_metrics, http_request
from repro.core.search import CascadeSearch
from repro.core.store import _SectionCache, save_search
from repro.errors import ProtocolError, SpecificationError
from repro.fleet.manager import BackgroundFleet
from repro.gates.library import GateLibrary
from repro.server import BackgroundServer, parse_endpoint
from repro.telemetry import (
    METRICS_CONTENT_TYPE,
    AccessLogWriter,
    MetricsRegistry,
    ProgressReporter,
    TraceSource,
    classify_record,
    format_text,
    format_value,
    parse_prometheus_text,
    sample_value,
    strip_nondeterministic,
    summarize_logs,
    validate_trace_field,
)

BOUND = 4


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("telemetry") / "closure.rpro"
    search = CascadeSearch(GateLibrary(3), track_parents=True)
    search.extend_to(BOUND)
    save_search(search, path)
    return str(path)


class TestFormatValue:
    def test_int_valued_floats_render_as_ints(self):
        assert format_value(3.0) == "3"
        assert format_value(0) == "0"
        assert format_value(-2.0) == "-2"

    def test_fractional_floats_round_trip(self):
        assert format_value(0.25) == "0.25"
        assert float(format_value(0.1)) == 0.1

    def test_infinities(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"


class TestMetricsRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help")
        c.inc()
        c.inc(2)
        assert c.value() == 3

    def test_counter_labels_and_preseed(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", "help", labels=("op",))
        c.preseed("synth")
        c.inc(op="healthz")
        assert c.value(op="synth") == 0
        assert c.value(op="healthz") == 1
        assert c.values() == {("healthz",): 1, ("synth",): 0}

    def test_counter_rejects_decrease_and_wrong_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help", labels=("op",))
        with pytest.raises(SpecificationError):
            c.inc(-1, op="a")
        with pytest.raises(SpecificationError):
            c.inc(nope="a")

    def test_callback_counter_is_read_only(self):
        reg = MetricsRegistry()
        state = {"hits": 7}
        c = reg.counter("hits_total", "help", fn=lambda: state["hits"])
        assert c.value() == 7
        state["hits"] = 9
        assert c.value() == 9
        with pytest.raises(SpecificationError):
            c.inc()

    def test_callback_gauge_with_labels(self):
        reg = MetricsRegistry()
        reg.gauge(
            "inflight", "help", labels=("backend",),
            fn=lambda: {"b0": 2, "b1": 0},
        )
        samples = parse_prometheus_text(reg.render())
        assert sample_value(samples, "inflight", backend="b0") == 2
        assert sample_value(samples, "inflight", backend="b1") == 0

    def test_duplicate_registration_raises(self):
        reg = MetricsRegistry()
        reg.counter("dup_total", "help")
        with pytest.raises(SpecificationError):
            reg.gauge("dup_total", "help")

    def test_invalid_names_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(SpecificationError):
            reg.counter("bad name", "help")
        with pytest.raises(SpecificationError):
            reg.counter("ok_total", "help", labels=("bad-label",))

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", "help", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 100.0):
            h.observe(v)
        samples = parse_prometheus_text(reg.render())
        assert sample_value(samples, "lat_ms_bucket", le="1") == 2
        assert sample_value(samples, "lat_ms_bucket", le="10") == 3
        assert sample_value(samples, "lat_ms_bucket", le="+Inf") == 4
        assert sample_value(samples, "lat_ms_count") == 4
        assert sample_value(samples, "lat_ms_sum") == pytest.approx(106.2)

    def test_histogram_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(SpecificationError):
            reg.histogram("h", "help", buckets=(10.0, 1.0))

    def test_render_is_byte_stable_and_sorted(self):
        def build():
            reg = MetricsRegistry()
            g = reg.gauge("zeta", "last family")
            c = reg.counter("alpha_total", "first family", labels=("op",))
            c.inc(op="b")
            c.inc(op="a")
            g.set(1.5)
            return reg.render()

        first, second = build(), build()
        assert first == second
        assert first.endswith("\n")
        lines = first.splitlines()
        assert lines[0] == "# HELP alpha_total first family"
        assert lines[1] == "# TYPE alpha_total counter"
        assert lines[2] == 'alpha_total{op="a"} 1'
        assert lines[3] == 'alpha_total{op="b"} 1'
        assert "# TYPE zeta gauge" in lines

    def test_render_parse_round_trip_with_escapes(self):
        reg = MetricsRegistry()
        c = reg.counter("esc_total", "help", labels=("path",))
        c.inc(path='a"b\\c')
        samples = parse_prometheus_text(reg.render())
        assert sample_value(samples, "esc_total", path='a"b\\c') == 1

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("not a metric line\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("a_total 1\na_total 2\n")


class TestTraceSource:
    def test_id_shapes(self):
        source = TraceSource()
        trace, span = source.trace_id(), source.span_id()
        assert len(trace) == 16 and len(span) == 8
        int(trace, 16), int(span, 16)  # both parse as hex

    def test_seeded_source_is_deterministic(self):
        a, b = TraceSource(seed=7), TraceSource(seed=7)
        assert [a.trace_id() for _ in range(5)] == [
            b.trace_id() for _ in range(5)
        ]
        assert a.span_id() == b.span_id()

    def test_unseeded_ids_do_not_repeat(self):
        source = TraceSource()
        ids = {source.trace_id() for _ in range(64)}
        assert len(ids) == 64

    def test_validate_trace_field(self):
        assert validate_trace_field(None, "trace_id") is None
        assert validate_trace_field("abc-123", "trace_id") == "abc-123"
        for bad in ("", 7, "with space", "x" * 129, "new\nline"):
            with pytest.raises(ProtocolError):
                validate_trace_field(bad, "trace_id")


class TestAccessLogWriter:
    def test_writes_records_and_counts_them(self, tmp_path):
        path = tmp_path / "a.ndjson"
        reg = MetricsRegistry()
        writer = AccessLogWriter(str(path), registry=reg)
        writer.start()
        for index in range(5):
            writer.submit({"op": "synth", "index": index})
        writer.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["index"] for line in lines] == list(range(5))
        samples = parse_prometheus_text(reg.render())
        assert sample_value(samples, "repro_log_records_written_total") == 5
        assert sample_value(samples, "repro_log_bytes_written_total") == (
            sum(len(line) + 1 for line in lines)
        )
        assert sample_value(samples, "repro_log_write_errors_total") == 0
        assert sample_value(samples, "repro_log_queue_depth") == 0

    def test_rotation_keeps_whole_lines_and_counts(self, tmp_path):
        path = tmp_path / "rot.ndjson"
        reg = MetricsRegistry()
        writer = AccessLogWriter(
            str(path), max_bytes=200, keep=2, registry=reg
        )
        writer.start()
        for index in range(40):
            writer.submit({"op": "synth", "index": index, "pad": "x" * 40})
        writer.close()
        rotated = [p for p in (f"{path}.1", f"{path}.2") if os.path.exists(p)]
        assert rotated, "expected at least one rotated file"
        assert not os.path.exists(f"{path}.3")
        seen = []
        for file_path in [*reversed(rotated), str(path)]:
            for line in open(file_path, encoding="utf-8"):
                seen.append(json.loads(line)["index"])  # every line parses
        assert seen == sorted(seen)
        samples = parse_prometheus_text(reg.render())
        assert sample_value(samples, "repro_log_rotations_total") >= 1
        assert sample_value(samples, "repro_log_records_written_total") == 40

    def test_submit_before_start_or_after_close_is_dropped(self, tmp_path):
        path = tmp_path / "late.ndjson"
        writer = AccessLogWriter(str(path))
        writer.submit({"early": True})  # not started: silently dropped
        writer.start()
        writer.close()
        writer.submit({"late": True})  # closed: silently dropped
        assert path.read_text() == ""

    def test_bad_args_raise(self, tmp_path):
        with pytest.raises(SpecificationError):
            AccessLogWriter(str(tmp_path / "x"), max_bytes=0)
        with pytest.raises(SpecificationError):
            AccessLogWriter(str(tmp_path / "x"), keep=0)


class TestProgressReporter:
    def test_records_are_ndjson_with_monotonic_seq(self):
        stream = io.StringIO()
        with ProgressReporter(stream=stream, run_id="r1") as reporter:
            reporter.emit("start", cost_bound=3)
            reporter.emit("level-start", level=1)
        records = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        assert [r["seq"] for r in records] == [0, 1]
        assert all(r["run"] == "r1" for r in records)
        assert all("ts" in r for r in records)
        assert records[0]["event"] == "start"

    def test_strip_nondeterministic(self):
        record = {"event": "level-end", "level": 2, "ts": 1.0,
                  "elapsed_s": 0.5, "size": 9}
        assert strip_nondeterministic(record) == {
            "event": "level-end", "level": 2, "size": 9,
        }

    def test_tty_line_renders_and_close_finishes_it(self):
        tty = io.StringIO()
        reporter = ProgressReporter(tty=tty)
        reporter.emit("commit", level=2, accepted=10, rows=20,
                      dedup_slots=64, dedup_used=20)
        reporter.emit("level-end", level=2, size=10, rows=20, elapsed_s=0.1)
        text = tty.getvalue()
        assert "committing 10" in text
        assert "level 2: 10 new, 20 total rows" in text
        reporter.close()
        assert tty.getvalue().endswith("\n")

    def test_file_path_appends(self, tmp_path):
        path = tmp_path / "prog.ndjson"
        with ProgressReporter(path=str(path)) as reporter:
            reporter.emit("start")
        with ProgressReporter(path=str(path)) as reporter:
            reporter.emit("done", levels=0, rows=1, elapsed_s=0.0)
        events = [
            json.loads(line)["event"]
            for line in path.read_text().splitlines()
        ]
        assert events == ["start", "done"]


def _expand_with_progress(kernel: str, bound: int = 3, **options):
    """Run one search with a reporter; returns (search, records)."""
    stream = io.StringIO()
    reporter = ProgressReporter(stream=stream)
    search = CascadeSearch(
        GateLibrary(3), kernel=kernel,
        kernel_options=options or None,
    )
    search.set_progress(reporter)
    search.extend_to(bound)
    reporter.close()
    records = [json.loads(line) for line in stream.getvalue().splitlines()]
    return search, records


class TestKernelProgressEvents:
    @pytest.mark.parametrize("kernel", ["vector", "translate"])
    def test_level_events_bracket_every_level(self, kernel):
        search, records = _expand_with_progress(kernel)
        starts = [r["level"] for r in records if r["event"] == "level-start"]
        ends = [r for r in records if r["event"] == "level-end"]
        assert starts == [1, 2, 3]
        assert [r["level"] for r in ends] == [1, 2, 3]
        for record in ends:
            assert record["size"] == search.level_size(record["level"])
            assert "elapsed_s" in record

    def test_vector_kernel_emits_phase_events_with_dedup_occupancy(self):
        search, records = _expand_with_progress("vector")
        plans = [r for r in records if r["event"] == "plan"]
        commits = [r for r in records if r["event"] == "commit"]
        assert [r["level"] for r in plans] == [1, 2, 3]
        for plan in plans:
            assert plan["planned"] >= plan["kept"] > 0
            assert plan["chunks"] > 0
        assert [r["level"] for r in commits] == [1, 2, 3]
        for commit in commits:
            assert commit["dedup_used"] <= commit["dedup_slots"]
        assert commits[-1]["rows"] == search.stats().total_seen

    def test_parallel_kernel_reports_filter_and_checkpoints(self, tmp_path):
        search, records = _expand_with_progress(
            "parallel", checkpoint_dir=str(tmp_path / "ck")
        )
        try:
            plans = [r for r in records if r["event"] == "plan"]
            # The relation filter prunes provable duplicates, so the
            # kept count drops below the planned count somewhere.
            assert any(r["kept"] < r["planned"] for r in plans)
            checkpoints = [
                r for r in records if r["event"] == "checkpoint"
            ]
            assert [r["level"] for r in checkpoints] == [1, 2, 3]
            assert all(
                r["path"] == str(tmp_path / "ck") for r in checkpoints
            )
        finally:
            search.close()

    def test_progress_stream_is_deterministic(self):
        _, first = _expand_with_progress("vector")
        _, second = _expand_with_progress("vector")
        assert [strip_nondeterministic(r) for r in first] == [
            strip_nondeterministic(r) for r in second
        ]

    def test_store_bytes_identical_with_and_without_progress(self, tmp_path):
        plain = CascadeSearch(GateLibrary(3))
        plain.extend_to(3)
        instrumented, _records = _expand_with_progress("vector")
        # The header's elapsed_seconds is the one wall-clock byte; zero
        # it on both sides so the comparison isolates telemetry effects.
        plain._elapsed = 0.0
        instrumented._elapsed = 0.0
        save_search(plain, tmp_path / "plain.rpro")
        save_search(instrumented, tmp_path / "instrumented.rpro")
        assert (
            (tmp_path / "plain.rpro").read_bytes()
            == (tmp_path / "instrumented.rpro").read_bytes()
        )


class TestSectionCacheConcurrency:
    def test_concurrent_readers_keep_stats_consistent(self):
        cache = _SectionCache(max_bytes=4096)
        blob = b"x" * 512  # 8 entries fill the cache exactly
        touches_per_thread = 400
        n_threads = 8

        def worker(offset: int) -> None:
            for index in range(touches_per_thread):
                key = ("store", "chunk", (offset + index) % 16)
                if cache.get(key) is None:
                    cache.put(key, blob)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == (
            n_threads * touches_per_thread
        )
        # 16 distinct keys cycling through an 8-entry cache must evict.
        assert stats["evictions"] > 0
        assert stats["bytes"] <= stats["max_bytes"]
        assert stats["entries"] == stats["bytes"] // len(blob)

    def test_clear_resets_every_counter(self):
        cache = _SectionCache(max_bytes=1024)
        cache.put(("k", 0), b"data")
        cache.get(("k", 0))
        cache.get(("missing", 1))
        cache.clear()
        assert cache.stats() == {
            "entries": 0, "bytes": 0, "max_bytes": 1024,
            "hits": 0, "misses": 0, "evictions": 0,
        }


def _write_ndjson(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestTail:
    def test_classify_record(self):
        assert classify_record({"op": "synth", "outcome": "ok"}) == "access"
        assert classify_record({"finding": "unhealthy"}) == "ops"
        assert classify_record({"verdict": "applied"}) == "ops"
        assert classify_record({"event": "plan", "seq": 3}) == "progress"
        assert classify_record({"hello": 1}) == "unknown"

    def _fleet_logs(self, tmp_path):
        """A synthetic failover: router record + two replica landings."""
        router_log = tmp_path / "router.access.ndjson"
        replica_log = tmp_path / "b0.access.ndjson"
        replica2_log = tmp_path / "b1.access.ndjson"
        trace = "aabbccdd00112233"
        _write_ndjson(router_log, [{
            "ts": 3.0, "op": "synth", "store": "s", "id": 1,
            "trace_id": trace, "queue_wait_ms": 0.0,
            "execute_ms": 9.0, "total_ms": 9.0, "outcome": "ok",
            "backend": "backend-1",
            "attempts": [
                {"backend": "backend-0", "span_id": "span0001",
                 "outcome": "transport-error", "ms": 4.0},
                {"backend": "backend-1", "span_id": "span0002",
                 "outcome": "ok", "ms": 5.0},
            ],
        }])
        _write_ndjson(replica_log, [{
            "ts": 1.0, "op": "synth", "store": "s", "id": 7,
            "trace_id": trace, "span_id": "span0001",
            "queue_wait_ms": 0.1, "execute_ms": 3.0, "total_ms": 3.5,
            "outcome": "SERVER_FAULT",
        }])
        _write_ndjson(replica2_log, [{
            "ts": 2.0, "op": "synth", "store": "s", "id": 8,
            "trace_id": trace, "span_id": "span0002",
            "queue_wait_ms": 0.2, "execute_ms": 4.0, "total_ms": 4.5,
            "outcome": "ok",
        }])
        return [str(router_log), str(replica_log), str(replica2_log)], trace

    def test_rollups_exclude_router_records(self, tmp_path):
        paths, _trace = self._fleet_logs(tmp_path)
        summary = summarize_logs(paths)
        roll = summary["rollups"]["s"]
        # Two replica landings; the router's own record only feeds the
        # failover tally, never the latency/rate numbers.
        assert roll["requests"] == 2
        assert roll["failovers"] == 1
        assert roll["ok"] == 1 and roll["errors"] == 1
        # Latency percentiles come from the 3.5ms and 4.5ms landings
        # only (the router's 9.0ms record would drag p50 upward).
        assert set(roll["total_ms"]) == {"p50", "p90", "p99"}
        assert 3.5 <= roll["total_ms"]["p50"] <= 4.5

    def test_traces_join_across_files_in_time_order(self, tmp_path):
        paths, trace = self._fleet_logs(tmp_path)
        summary = summarize_logs(paths)
        assert summary["trace_count"] == 1
        info = summary["traces"][trace]
        assert info["records"] == 3
        assert info["failover"] is True
        assert info["backends"] == ["backend-0", "backend-1"]
        assert info["spans"] == ["span0001", "span0002"]
        assert [r["ts"] for r in info["chain"]] == [1.0, 2.0, 3.0]
        assert len(info["sources"]) == 3

    def test_trace_filter_and_min_records(self, tmp_path):
        paths, trace = self._fleet_logs(tmp_path)
        only = summarize_logs(paths, trace=trace)
        assert set(only["traces"]) == {trace}
        assert summarize_logs(paths, trace="missing")["traces"] == {}

    def test_progress_and_ops_records_summarize(self, tmp_path):
        log = tmp_path / "mixed.ndjson"
        _write_ndjson(log, [
            {"event": "level-end", "run": "pre", "seq": 0, "level": 2,
             "rows": 100, "ts": 1.0},
            {"event": "spill", "run": "pre", "seq": 1, "level": 3, "ts": 2.0},
            {"finding": "unhealthy", "backend": "b0"},
            {"event": "done", "run": "pre", "seq": 2, "levels": 3,
             "rows": 200, "ts": 3.0},
        ])
        with open(log, "a", encoding="utf-8") as handle:
            handle.write("{torn json line\n")
        summary = summarize_logs([str(log)])
        assert summary["records"]["progress"] == 3
        assert summary["records"]["ops"] == 1
        info = summary["progress"]["pre"]
        assert info["done"] is True
        assert info["spills"] == 1
        assert info["rows"] == 200

    def test_rotated_set_is_read_oldest_first(self, tmp_path):
        log = tmp_path / "r.ndjson"
        _write_ndjson(f"{log}.1", [
            {"op": "synth", "store": "s", "outcome": "ok", "ts": 1.0,
             "total_ms": 1.0, "trace_id": "t1"},
        ])
        _write_ndjson(log, [
            {"op": "synth", "store": "s", "outcome": "ok", "ts": 2.0,
             "total_ms": 2.0, "trace_id": "t1"},
        ])
        assert summarize_logs([str(log)])["records"]["access"] == 2
        assert summarize_logs(
            [str(log)], rotated=False
        )["records"]["access"] == 1

    def test_format_text_renders_every_section(self, tmp_path):
        paths, trace = self._fleet_logs(tmp_path)
        text = format_text(summarize_logs(paths))
        assert "store s: 2 requests" in text
        assert f"trace {trace}" in text
        assert "[failover]" in text
        assert "backend-0 -> backend-1" in text


def _ndjson_roundtrip(address: str, request: dict) -> dict:
    """One raw NDJSON request/response against *address*."""
    family, target = parse_endpoint(address)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(30)
    with sock:
        sock.connect(target)
        sock.sendall(json.dumps(request).encode() + b"\n")
        buffer = b""
        while not buffer.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
    return json.loads(buffer)


def _raw_http(address: str, path: str, headers: dict) -> tuple[str, bytes]:
    """GET *path* with extra *headers*; returns (header_text, body)."""
    family, target = parse_endpoint(address)
    sock = socket.socket(
        socket.AF_UNIX if family == "unix" else socket.AF_INET,
        socket.SOCK_STREAM,
    )
    sock.settimeout(30)
    extra = "".join(f"{k}: {v}\r\n" for k, v in headers.items())
    with sock:
        sock.connect(target)
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
            f"{extra}\r\n".encode()
        )
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    head, _, body = b"".join(chunks).partition(b"\r\n\r\n")
    return head.decode("latin-1"), body


class TestServerTelemetryE2E:
    @pytest.fixture(scope="class")
    def observed(self, store_path):
        """A server with a unix socket and an access log."""
        workdir = tempfile.mkdtemp(prefix="repro-telemetry-")
        sock = os.path.join(workdir, "serve.sock")
        log = os.path.join(workdir, "access.ndjson")
        try:
            with BackgroundServer(
                store_path, unix=sock, access_log=log
            ) as srv:
                yield srv, sock, log
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    def test_metrics_endpoint_parses_and_agrees_with_healthz(self, observed):
        server, _sock, _log = observed
        with ServeClient(server.address_text) as client:
            client.synth("peres")
            health = client.healthz()
        status, text = fetch_metrics(server.address_text)
        assert status == 200
        samples = parse_prometheus_text(text)
        # The healthz counters are read back from the same registry, so
        # the two views can never disagree (modulo requests in between:
        # fetch_metrics itself does not run through the service op).
        for op, count in health["queries"].items():
            assert sample_value(
                samples, "repro_requests_total", op=op
            ) >= count
        assert sample_value(samples, "repro_build_info", version=__version__) == 1
        assert sample_value(samples, "repro_start_time_seconds") == (
            health["start_time"]
        )
        assert sample_value(samples, "repro_uptime_seconds") > 0
        assert sample_value(
            samples, "repro_section_cache_hits_total"
        ) == health["section_cache"]["hits"]
        assert sample_value(
            samples, "repro_request_latency_ms_count", op="synth"
        ) >= 1

    def test_metrics_content_type_header(self, observed):
        server, _sock, _log = observed
        head, body = _raw_http(server.address_text, "/metrics", {})
        assert " 200 " in head.splitlines()[0]
        assert f"Content-Type: {METRICS_CONTENT_TYPE}" in head
        parse_prometheus_text(body.decode())

    def test_metrics_over_ndjson_returns_wrapper(self, observed):
        server, _sock, _log = observed
        response = _ndjson_roundtrip(
            server.address_text, {"id": 1, "op": "metrics"}
        )
        assert response["ok"] is True
        result = response["result"]
        assert result["content_type"] == METRICS_CONTENT_TYPE
        parse_prometheus_text(result["text"])

    def test_healthz_reports_version_and_uptime(self, observed):
        server, sock, _log = observed
        for address in (server.address_text, f"unix:{sock}"):
            status, payload = http_request(address, "/healthz")
            assert status == 200
            assert payload["version"] == __version__
            assert payload["start_time"] <= time.time()
            assert payload["uptime_s"] >= 0

    def test_ndjson_trace_id_is_echoed_and_logged(self, observed):
        server, _sock, log = observed
        trace = "e2e-trace-0001"
        response = _ndjson_roundtrip(server.address_text, {
            "id": 5, "op": "healthz", "trace_id": trace, "span_id": "sp01",
        })
        assert response["ok"] is True
        assert response["trace_id"] == trace
        # Untraced requests stay byte-compatible: no trace field at all.
        bare = _ndjson_roundtrip(
            server.address_text, {"id": 6, "op": "healthz"}
        )
        assert "trace_id" not in bare
        deadline = time.time() + 10
        while time.time() < deadline:
            records = [
                json.loads(line)
                for line in open(log, encoding="utf-8")
                if line.strip()
            ]
            traced = [r for r in records if r.get("trace_id") == trace]
            if traced:
                break
            time.sleep(0.05)
        assert traced and traced[0]["span_id"] == "sp01"

    def test_error_payload_carries_the_trace_id(self, observed):
        server, _sock, _log = observed
        trace = "err-trace-0001"
        # An error raised inside the handler (after decode) must carry
        # the trace both as the top-level echo and inside the payload.
        response = _ndjson_roundtrip(server.address_text, {
            "id": 9, "op": "synth", "params": {}, "trace_id": trace,
        })
        assert response["ok"] is False
        assert response["trace_id"] == trace
        assert response["error"]["trace_id"] == trace

    def test_invalid_trace_id_is_rejected(self, observed):
        server, _sock, _log = observed
        response = _ndjson_roundtrip(server.address_text, {
            "id": 10, "op": "healthz", "trace_id": "has space",
        })
        assert response["ok"] is False
        assert response["error"]["code"] == "protocol"

    def test_http_trace_header_round_trips(self, observed):
        server, _sock, _log = observed
        trace = "http-trace-01"
        head, body = _raw_http(
            server.address_text, "/healthz", {"X-Repro-Trace-Id": trace}
        )
        assert " 200 " in head.splitlines()[0]
        assert f"X-Repro-Trace-Id: {trace}" in head
        json.loads(body)


class TestFleetTelemetryE2E:
    @pytest.fixture(scope="class")
    def fleet(self, store_path):
        with BackgroundFleet(
            store_path, replicas=2, port=0, interval=0.3
        ) as handle:
            yield handle

    def test_trace_is_minted_and_recoverable_from_both_logs(self, fleet):
        response = _ndjson_roundtrip(fleet.address_text, {
            "id": 1, "op": "synth",
            "params": {"target": "peres", "all": False, "allow_not": True},
        })
        assert response["ok"] is True
        trace = response["trace_id"]
        assert len(trace) == 16
        router_log = fleet.handle.router_access_log
        run_dir = fleet.manager.run_dir
        replica_logs = [
            os.path.join(run_dir, name)
            for name in sorted(os.listdir(run_dir))
            if name.endswith(".access.ndjson") and name.startswith("b")
        ]
        assert router_log and os.path.dirname(router_log) == run_dir

        def find(path, want_attempts):
            if not os.path.exists(path):
                return None
            for line in open(path, encoding="utf-8"):
                if not line.strip():
                    continue
                record = json.loads(line)
                if record.get("trace_id") == trace and (
                    ("attempts" in record) == want_attempts
                ):
                    return record
            return None

        deadline = time.time() + 15
        router_record = replica_record = None
        while time.time() < deadline:
            router_record = find(router_log, want_attempts=True)
            replica_record = next(
                (
                    r for r in (
                        find(path, want_attempts=False)
                        for path in replica_logs
                    )
                    if r is not None
                ),
                None,
            )
            if router_record and replica_record:
                break
            time.sleep(0.1)
        assert router_record is not None, "trace missing from router log"
        assert replica_record is not None, "trace missing from replica logs"
        # The router's attempt list joins the replica record by span.
        spans = [a.get("span_id") for a in router_record["attempts"]]
        assert replica_record["span_id"] in spans
        assert router_record["attempts"][-1]["outcome"] == "ok"

        summary = summarize_logs(
            [router_log, *replica_logs], trace=trace, min_trace_records=1
        )
        info = summary["traces"][trace]
        assert info["records"] >= 2
        assert len(info["sources"]) >= 2

    def test_router_metrics_parse_and_agree_with_healthz(self, fleet):
        with ServeClient(fleet.address_text) as client:
            client.synth("peres")
            health = client.healthz()
        status, text = fetch_metrics(fleet.address_text)
        assert status == 200
        samples = parse_prometheus_text(text)
        assert sample_value(samples, "repro_routed_total") >= health["routed"] - 1
        assert sample_value(samples, "repro_failovers_total") == (
            health["failovers"]
        )
        assert sample_value(samples, "repro_shed_total") == health["shed"]
        for name, info in health["backends"].items():
            assert sample_value(
                samples, "repro_backend_requests_total", backend=name
            ) == info["requests"]
        assert health["version"] == __version__

    def test_router_healthz_carries_version_and_start_time(self, fleet):
        _status, payload = http_request(fleet.address_text, "/healthz")
        assert payload["version"] == __version__
        assert payload["start_time"] <= time.time()
