"""Integration: synthesis round-trips verified at every semantic level."""

import random

import pytest

from repro.core.mce import express
from repro.core.probabilistic import ProbabilisticSpec, express_probabilistic
from repro.gates import named
from repro.perm.permutation import Permutation
from repro.sim.verify import (
    verify_probabilistic_synthesis,
    verify_synthesis,
)


class TestReversibleRoundTrips:
    @pytest.mark.parametrize("cost", [0, 1, 2, 3, 4, 5])
    def test_class_members_roundtrip(self, cost, cost_table5, library3, search3):
        """Sampled G[k] members synthesize at cost k and fully verify."""
        members = cost_table5.members(cost)
        rng = random.Random(cost)
        sample = members if len(members) <= 6 else rng.sample(members, 6)
        for target in sample:
            result = express(target, library3, search=search3)
            assert result.cost == cost
            report = verify_synthesis(result)
            assert report, report.failures

    def test_random_coset_targets_roundtrip(self, cost_table5, library3, search3):
        """NOT-layer times G[k] member: full Theorem 2 path."""
        rng = random.Random(99)
        for _ in range(10):
            cost = rng.randint(1, 5)
            base = rng.choice(cost_table5.members(cost))
            mask = rng.randrange(8)
            target = named.not_layer_permutation(mask) * base
            result = express(target, library3, search=search3)
            assert result.cost == cost  # NOT layers are free
            assert verify_synthesis(result)

    def test_whole_g4_class_verifies(self, cost_table5, library3, search3):
        for target in cost_table5.members(4):
            result = express(target, library3, search=search3)
            assert result.cost == 4
            assert result.circuit.binary_permutation() == target


class TestProbabilisticRoundTrips:
    def test_reachable_specs_synthesize_and_verify(self, library3, search3):
        """Specs sampled from actual search levels are feasible by
        construction; synthesis must find them at minimal cost."""
        space = library3.space
        rng = random.Random(5)
        for cost in (1, 2, 3):
            level = search3.level(cost)
            for perm, _mask in rng.sample(level, 4):
                outputs = tuple(space.pattern(perm[i]) for i in range(8))
                spec = ProbabilisticSpec(outputs)
                result = express_probabilistic(
                    spec, library3, search=search3
                )
                assert result.cost <= cost
                report = verify_probabilistic_synthesis(result)
                assert report, report.failures

    def test_spec_cost_minimality(self, library3, search3):
        """The found cost is the first level containing a match."""
        space = library3.space
        level3 = search3.level(3)
        perm, _mask = level3[0]
        outputs = tuple(space.pattern(perm[i]) for i in range(8))
        result = express_probabilistic(
            ProbabilisticSpec(outputs), library3, search=search3
        )
        # Some other cascade may realize the same S-images cheaper, but
        # never at more than the sampled cascade's cost.
        assert result.cost <= 3
        # And re-synthesizing the result's own images reproduces its cost.
        again = express_probabilistic(
            ProbabilisticSpec(outputs), library3, search=search3
        )
        assert again.cost == result.cost


class TestCrossSimulatorAgreement:
    def test_statevector_matches_exact_on_synthesized_circuits(
        self, library3, search3
    ):
        import numpy as np

        from repro.mvl.patterns import binary_patterns
        from repro.sim.exact import ExactSimulator
        from repro.sim.statevector import StatevectorSimulator

        numeric = StatevectorSimulator(3)
        exact = ExactSimulator(3)
        for name in ("toffoli", "peres", "fredkin"):
            circuit = express(
                named.TARGETS[name], library3, search=search3
            ).circuit
            for pattern in binary_patterns(3):
                fast = numeric.run(circuit, pattern)
                slow = np.array(
                    [
                        x.to_complex()
                        for x in exact.run(circuit, pattern).column_vector()
                    ]
                )
                assert np.array_equal(fast, slow)
