"""repro: exact synthesis of 3-qubit quantum circuits from non-binary gates.

A from-scratch reproduction of Yang, Hung, Song & Perkowski, *"Exact
Synthesis of 3-qubit Quantum Circuits from Non-binary Quantum Gates Using
Multiple-Valued Logic and Group Theory"* (DATE 2005).

Quickstart::

    from repro import GateLibrary, express, named

    library = GateLibrary(n_qubits=3)
    result = express(named.TOFFOLI, library)
    print(result.circuit)        # 5-gate V/V+/CNOT cascade
    print(result.cost)           # 5

Precompute workflow -- the closure for a fixed (library, cost model)
pair is a pure artifact, so expand it once, persist it, and answer any
number of synthesis queries against the loaded store::

    from repro import (
        BatchSynthesizer, CascadeSearch, GateLibrary,
        load_search, save_search, named,
    )

    library = GateLibrary(n_qubits=3)

    # Precompute (once; `repro precompute closure.rpro` from a shell):
    search = CascadeSearch(library, track_parents=True)
    search.extend_to(7)
    save_search(search, "closure.rpro")

    # Serve (many times; `repro synth --store closure.rpro ...`):
    batch = BatchSynthesizer(load_search("closure.rpro", library))
    batch.synthesize(named.TOFFOLI).cost       # 5, in microseconds
    batch.synthesize_many(named.TARGETS.values())
    batch.cost_table().g_sizes                 # Table 2, no re-scan

Loading verifies a payload checksum and refuses stores whose library or
cost-model fingerprints do not match (`StoreMismatchError`).

See README.md for the full tour and DESIGN.md for the architecture.
"""

from repro._version import __version__

from repro.errors import (
    ReproError,
    InvalidValueError,
    InvalidGateError,
    InvalidCircuitError,
    InvalidPermutationError,
    SynthesisError,
    CostBoundExceededError,
    SpecificationError,
    SimulationError,
    NonBinaryControlError,
    StoreError,
    StoreMismatchError,
)
from repro.mvl import Qv, Pattern, LabelSpace, label_space
from repro.linalg import DyadicComplex, Matrix
from repro.perm import Permutation, PermutationGroup, symmetric_group
from repro.gates import Gate, GateKind, GateLibrary, TruthTable, named
from repro.core import (
    Circuit,
    CostModel,
    CascadeSearch,
    SearchState,
    StoreHeader,
    BatchSynthesizer,
    CostTable,
    dump_search,
    find_minimum_cost_circuits,
    express,
    express_all,
    express_probabilistic,
    load_search,
    loads_search,
    open_store,
    ProbabilisticSpec,
    read_header,
    save_search,
    SynthesisResult,
)

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "InvalidValueError",
    "InvalidGateError",
    "InvalidCircuitError",
    "InvalidPermutationError",
    "SynthesisError",
    "CostBoundExceededError",
    "SpecificationError",
    "SimulationError",
    "NonBinaryControlError",
    "StoreError",
    "StoreMismatchError",
    # substrates
    "Qv",
    "Pattern",
    "LabelSpace",
    "label_space",
    "DyadicComplex",
    "Matrix",
    "Permutation",
    "PermutationGroup",
    "symmetric_group",
    # gates
    "Gate",
    "GateKind",
    "GateLibrary",
    "TruthTable",
    "named",
    # core
    "Circuit",
    "CostModel",
    "CascadeSearch",
    "SearchState",
    "StoreHeader",
    "BatchSynthesizer",
    "CostTable",
    "dump_search",
    "find_minimum_cost_circuits",
    "express",
    "express_all",
    "express_probabilistic",
    "load_search",
    "loads_search",
    "open_store",
    "ProbabilisticSpec",
    "read_header",
    "save_search",
    "SynthesisResult",
]
