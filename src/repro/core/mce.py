"""MCE -- the paper's Minimum_Cost_Expressing algorithm.

Given a reversible target g (a permutation of the 2**n binary patterns),
produce a minimum-quantum-cost cascade of library gates realizing it,
with an optional *free* layer of NOT gates in front:

1. Normalize by Theorem 2: pick the NOT layer d0 with ``(d0 * g)`` fixing
   the all-zero pattern (``d0`` is the XOR-mask ``g^{-1}(0)``), so the
   remainder lies in G = Stab(all-zeros), the set reachable without NOT.
2. Search B[1], B[2], ... for a cascade permutation b with b(S) = S whose
   restriction to S equals the remainder; the first hit is cost-minimal
   (Theorem 3).
3. Walk the parent pointers to extract the witness cascade.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CostBoundExceededError, SpecificationError
from repro.core.circuit import Circuit
from repro.core.cost import CostModel, UNIT_COST
from repro.core.search import CascadeSearch
from repro.gates.gate import Gate
from repro.gates.library import GateLibrary
from repro.gates.named import not_layer_permutation
from repro.perm.permutation import Permutation

#: Practical default for the enumeration bound; the paper used cb = 7
#: ("the upper-bound cost that we can apply in a particular computer").
DEFAULT_COST_BOUND = 7


@dataclass(frozen=True)
class SynthesisResult:
    """A synthesized implementation of a reversible target.

    Attributes:
        target: the requested permutation of binary patterns.
        circuit: full cascade including the (free) NOT layer, if any.
        cost: quantum cost of the 2-qubit part (the minimal cost).
        not_mask: XOR mask of the leading NOT layer (0 if none).
        cascade_permutation: the label permutation of the 2-qubit part.
    """

    target: Permutation
    circuit: Circuit
    cost: int
    not_mask: int
    cascade_permutation: Permutation

    @property
    def two_qubit_circuit(self) -> Circuit:
        """The cascade without the leading NOT layer."""
        return Circuit(
            tuple(g for g in self.circuit.gates if g.kind.is_two_qubit),
            self.circuit.n_qubits,
        )

    def __str__(self) -> str:
        return f"{self.circuit} (cost {self.cost})"


def _not_layer_gates(mask: int, n_qubits: int) -> tuple[Gate, ...]:
    """NOT gates for every set bit of *mask* (wire 0 = most significant)."""
    gates = []
    for wire in range(n_qubits):
        if (mask >> (n_qubits - 1 - wire)) & 1:
            gates.append(Gate.not_(wire, n_qubits))
    return tuple(gates)


def _check_target(target: Permutation, library: GateLibrary) -> None:
    expected = library.space.n_binary
    if target.degree != expected:
        raise SpecificationError(
            f"target degree {target.degree} != {expected} binary patterns "
            f"of a {library.n_qubits}-qubit register"
        )


def express(
    target: Permutation,
    library: GateLibrary,
    cost_bound: int = DEFAULT_COST_BOUND,
    cost_model: CostModel = UNIT_COST,
    search: CascadeSearch | None = None,
    allow_not: bool = True,
) -> SynthesisResult:
    """Synthesize one minimum-cost implementation of *target*.

    Args:
        target: permutation of the 2**n binary patterns (degree 2**n).
        library: gate library to draw 2-qubit gates from.
        cost_bound: the paper's ``cb``; the search is abandoned beyond it.
        cost_model: integer gate costs.
        search: reusable parent-tracking search engine (one is created on
            demand; passing a shared engine amortizes the BFS across many
            syntheses, which is how the benchmarks regenerate Table 2 and
            all figures from a single closure).
        allow_not: permit the free NOT layer of Theorem 2.  When False,
            only targets fixing the all-zero pattern are expressible.

    Raises:
        CostBoundExceededError: no realization within *cost_bound*.
        SpecificationError: degree mismatch, or the target needs a NOT
            layer while ``allow_not=False``.
    """
    results = _express_impl(
        target, library, cost_bound, cost_model, search, allow_not, first_only=True
    )
    return results[0]


def express_all(
    target: Permutation,
    library: GateLibrary,
    cost_bound: int = DEFAULT_COST_BOUND,
    cost_model: CostModel = UNIT_COST,
    search: CascadeSearch | None = None,
    allow_not: bool = True,
) -> list[SynthesisResult]:
    """All minimum-cost implementations distinguishable at the label level.

    Each distinct cascade *permutation* restricting to the target yields
    one witness circuit (the paper reports 2 such implementations for
    Peres and 4 for Toffoli).  Distinct gate orderings realizing the same
    label permutation are represented by a single witness, matching the
    paper's remark that the algorithm "does not intend to find all
    possible implementations".
    """
    return _express_impl(
        target, library, cost_bound, cost_model, search, allow_not, first_only=False
    )


def normalize_target(
    target: Permutation, library: GateLibrary, allow_not: bool = True
) -> tuple[int, Permutation, tuple[Gate, ...]]:
    """Theorem 2 normalization: strip the free NOT layer off a target.

    Returns ``(not_mask, remainder, not_gates)`` where ``remainder``
    fixes the all-zero pattern and ``target = d0(not_mask) * remainder``
    (``d0`` is an involution), so synthesizing the NOT-free remainder
    synthesizes the target.

    Raises:
        SpecificationError: degree mismatch, or the target needs a NOT
            layer while ``allow_not=False``.
    """
    _check_target(target, library)
    if library.space.radix != 2:
        # Theorem 2 is a binary statement: MV libraries have no free NOT
        # layer, so the target is searched for as-is.
        return 0, target, ()
    zero_preimage = target.inverse()(0)
    not_mask = zero_preimage if allow_not else 0
    if not allow_not and zero_preimage != 0:
        raise SpecificationError(
            "target moves the all-zero pattern; it needs a NOT layer "
            "(allow_not=True) since no NOT-free cascade can move it"
        )
    d0 = not_layer_permutation(not_mask, library.n_qubits)
    remainder = d0 * target  # g = d0 * remainder with d0 an involution
    return not_mask, remainder, _not_layer_gates(not_mask, library.n_qubits)


def _not_layer_result(
    target: Permutation,
    library: GateLibrary,
    not_mask: int,
    not_gates: tuple[Gate, ...],
) -> SynthesisResult:
    """The cost-0 result for a target that is (at most) a pure NOT layer."""
    return SynthesisResult(
        target=target,
        circuit=Circuit(not_gates, library.n_qubits),
        cost=0,
        not_mask=not_mask,
        cascade_permutation=Permutation.identity(library.space.size),
    )


def _results_from_rows(
    rows,
    search: CascadeSearch,
    target: Permutation,
    not_mask: int,
    not_gates: tuple[Gate, ...],
    cost_model: CostModel,
    first_only: bool,
) -> list[SynthesisResult]:
    """Turn matching *global closure rows* into witness-backed results.

    Witness extraction walks parent arrays directly by row -- the path
    shared by the level scan here, by
    :class:`~repro.core.batch.BatchSynthesizer` and by the v2 store's
    serialized remainder index (no byte-level lookups, O(cost) per
    witness).
    """
    library = search.library
    results = []
    for row in rows:
        row = int(row)
        gates = tuple(
            library[i].gate for i in search.witness_indices_for_row(row)
        )
        cascade = Circuit(gates, library.n_qubits)
        circuit = Circuit(not_gates + gates, library.n_qubits)
        results.append(
            SynthesisResult(
                target=target,
                circuit=circuit,
                cost=cascade.cost(cost_model),
                not_mask=not_mask,
                cascade_permutation=Permutation.from_images(
                    search.perm_bytes_at(row)
                ),
            )
        )
        if first_only:
            break
    return results


def _express_impl(
    target: Permutation,
    library: GateLibrary,
    cost_bound: int,
    cost_model: CostModel,
    search: CascadeSearch | None,
    allow_not: bool,
    first_only: bool,
) -> list[SynthesisResult]:
    not_mask, remainder, not_gates = normalize_target(target, library, allow_not)

    if remainder.is_identity:
        return [_not_layer_result(target, library, not_mask, not_gates)]

    if search is None:
        search = CascadeSearch(library, cost_model, track_parents=True)
    elif not search.tracks_parents:
        raise SpecificationError("express() needs a parent-tracking search")

    wanted = remainder.images  # first 2**n bytes of a matching cascade
    for cost in range(1, cost_bound + 1):
        # One vectorized boolean reduction per level instead of a Python
        # scan over every cascade permutation.
        rows = search.find_matching_rows(cost, wanted)
        if rows:
            return _results_from_rows(
                rows, search, target, not_mask, not_gates, cost_model,
                first_only,
            )
    raise CostBoundExceededError(
        f"permutation {target.cycle_string()}", cost_bound
    )


def minimal_cost(
    target: Permutation,
    library: GateLibrary,
    cost_bound: int = DEFAULT_COST_BOUND,
    cost_model: CostModel = UNIT_COST,
    search: CascadeSearch | None = None,
) -> int:
    """The minimal quantum cost of a target (convenience wrapper)."""
    return express(
        target, library, cost_bound, cost_model, search
    ).cost
