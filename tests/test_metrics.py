"""Metrics determinism: scenario SLO bars may rely on these numbers.

The scenario reporter compares client-side percentiles against SLO
bars and against the server's healthz windows; that is only a fair,
reproducible comparison if every sampler here is *byte-stable* -- the
same observations in the same order always produce the same summary
JSON, across instances, runs and platforms (``random.Random`` is
Mersenne Twister, guaranteed stable by the language reference).
"""

import json
import random

from repro.server.metrics import (
    Reservoir,
    RollingWindow,
    ServiceMetrics,
    percentile,
    percentile_summary,
)


def _stream(n, seed=42):
    rng = random.Random(seed)
    return [rng.uniform(0.0001, 0.5) for _ in range(n)]


def _bytes(summary):
    return json.dumps(summary, sort_keys=True).encode()


class TestReservoirDeterminism:
    def test_identical_streams_identical_summaries(self):
        """Two reservoirs fed the same 2000 observations (well past
        capacity, so the replacement RNG is exercised) agree byte for
        byte."""
        first, second = Reservoir(capacity=64), Reservoir(capacity=64)
        for value in _stream(2000):
            first.observe(value)
            second.observe(value)
        assert first.count == second.count == 2000
        assert _bytes(first.summary(scale=1e3)) \
            == _bytes(second.summary(scale=1e3))

    def test_summary_pinned(self):
        """The exact summary for a fixed stream, pinned: any change to
        the sampling RNG, the nearest-rank rule or the rounding is an
        intentional results change and must update this test."""
        reservoir = Reservoir(capacity=8)
        for value in range(100):
            reservoir.observe(value / 1000)
        assert reservoir.summary(scale=1e3) == {
            "count": 100, "p50": 38.0, "p90": 54.0, "p99": 63.0,
        }

    def test_order_matters_by_design(self):
        """A reservoir is a sample of a *stream*: a different order may
        keep different slots, so order is part of the contract."""
        values = _stream(500)
        first, second = Reservoir(capacity=16), Reservoir(capacity=16)
        for value in values:
            first.observe(value)
        for value in reversed(values):
            second.observe(value)
        # Not asserting inequality (they could collide); asserting the
        # documented determinism holds per-order.
        third = Reservoir(capacity=16)
        for value in reversed(values):
            third.observe(value)
        assert _bytes(second.summary()) == _bytes(third.summary())


class TestRollingWindowDeterminism:
    def test_identical_streams_identical_summaries(self):
        first, second = RollingWindow(capacity=32), RollingWindow(32)
        for value in _stream(300, seed=7):
            first.observe(value)
            second.observe(value)
        assert _bytes(first.summary(scale=1e3)) \
            == _bytes(second.summary(scale=1e3))

    def test_summary_pinned_and_forgets_old_samples(self):
        window = RollingWindow(capacity=4)
        for value in (1.0, 2.0, 3.0, 4.0, 100.0, 101.0, 102.0, 103.0):
            window.observe(value)
        # Only the last 4 samples exist; the healthy past fell out.
        assert window.summary() == {
            "count": 8, "window": 4,
            "p50": 102.0, "p90": 103.0, "p99": 103.0,
        }


class TestServiceMetricsDeterminism:
    def test_identical_traffic_identical_healthz_numbers(self):
        """Two servers given identical traffic must report identical
        percentile payloads -- what lets a fleet supervisor compare
        replicas, and the scenario reporter compare runs."""
        first, second = ServiceMetrics(), ServiceMetrics()
        rng = random.Random(3)
        traffic = [
            (rng.choice(["synth", "synth-batch", "healthz"]),
             rng.uniform(0, 0.01), rng.uniform(0, 0.1))
            for _ in range(1500)
        ]
        for op, wait, latency in traffic:
            first.observe(op, wait, latency)
            second.observe(op, wait, latency)
        assert _bytes(first.summary()) == _bytes(second.summary())


class TestPercentileHelpers:
    def test_nearest_rank_pins(self):
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 0.50) == 51.0
        assert percentile(samples, 0.99) == 99.0
        assert percentile([7.0], 0.99) == 7.0

    def test_percentile_summary_matches_samplers(self):
        """The shared helper and the samplers serialize identically --
        the reporter's client-side numbers and healthz are comparable."""
        values = _stream(50, seed=9)
        window = RollingWindow(capacity=100)
        for value in values:
            window.observe(value)
        summary = window.summary(scale=1e3)
        helper = percentile_summary(values, scale=1e3)
        assert {k: summary[k] for k in ("p50", "p90", "p99")} == helper

    def test_percentile_summary_empty_is_none(self):
        assert percentile_summary([]) is None
