"""Joining and rolling up the fleet's NDJSON logs (``repro tail``).

A fleet run leaves several NDJSON streams behind: the router's access
log, one access log per replica, the supervisor's ops log, and any
precompute progress logs.  Each is self-describing -- access records
carry ``op``/``outcome``, ops records carry ``finding``/``verdict``,
progress records carry ``event`` -- so this module reads them all
**leniently** (any well-formed JSON object counts; no schema required
up front), classifies each record, joins access records by
``trace_id``, and rolls latencies up per store through the same
:func:`~repro.server.metrics.percentile_summary` that healthz and the
scenario reporter use.  That shared serialization is the point: a p50
read off ``repro tail`` is byte-comparable with the one on a live
server's healthz and with a scenario SLO report.

Rotated sets are included by default: naming ``b0.access.ndjson``
reads ``b0.access.ndjson.N ... .1`` first, in arrival order, exactly
like :func:`repro.io.rotated_access_logs`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from ..io import rotated_access_logs
from ..server.metrics import percentile_summary

#: Record kinds ``classify_record`` can return.
KINDS = ("access", "ops", "progress", "unknown")


def classify_record(record: dict) -> str:
    """Which stream a record belongs to, from its own fields."""
    if "op" in record and "outcome" in record:
        return "access"
    if "finding" in record or "verdict" in record:
        return "ops"
    if "event" in record and "seq" in record:
        return "progress"
    return "unknown"


def read_log_records(
    path: str | Path, rotated: bool = True
) -> Iterable[tuple[str, int, dict]]:
    """Yield ``(source_path, lineno, record)`` leniently, oldest first.

    Unlike :func:`repro.io.load_access_log` this accepts any JSON
    object (ops and progress records lack the access-log fields) and
    silently skips unparseable lines -- a tail over a live, mid-write
    log must tolerate a torn final line anywhere.
    """
    paths = rotated_access_logs(path) if rotated else [Path(path)]
    for file_path in paths:
        if not file_path.exists():
            continue
        with open(file_path, encoding="utf-8", errors="replace") as handle:
            for lineno, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    yield str(file_path), lineno, record


def collect_logs(
    paths: Iterable[str | Path], rotated: bool = True
) -> list[dict]:
    """Read every log into tagged records: ``{kind, source, record}``."""
    out: list[dict] = []
    for path in paths:
        for source, lineno, record in read_log_records(path, rotated=rotated):
            out.append({
                "kind": classify_record(record),
                "source": source,
                "lineno": lineno,
                "record": record,
            })
    return out


def rollup_stores(tagged: list[dict]) -> dict:
    """Per-store rate/latency/error rollups over the access records.

    Only **replica-side** records (those without an ``attempts`` list)
    feed the latency percentiles and rates: the router logs the same
    request again with its own timing, and double-counting would skew
    every rate.  Router records are tallied separately under
    ``failovers`` (attempts > 1) so the rollup still shows retry
    pressure per store.  Percentiles run through
    :func:`percentile_summary` -- the healthz serialization.
    """
    per_store: dict[str, dict] = {}
    for entry in tagged:
        if entry["kind"] != "access":
            continue
        record = entry["record"]
        store = record.get("store") or "-"
        bucket = per_store.setdefault(store, {
            "requests": 0, "ok": 0, "errors": 0, "failovers": 0,
            "by_outcome": {}, "_samples": [], "_ts": [],
        })
        if "attempts" in record:  # router-side view of the same request
            if len(record["attempts"]) > 1:
                bucket["failovers"] += 1
            continue
        bucket["requests"] += 1
        outcome = record.get("outcome", "?")
        bucket["by_outcome"][outcome] = (
            bucket["by_outcome"].get(outcome, 0) + 1
        )
        if outcome == "ok":
            bucket["ok"] += 1
        else:
            bucket["errors"] += 1
        total_ms = record.get("total_ms")
        if isinstance(total_ms, (int, float)):
            bucket["_samples"].append(float(total_ms))
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            bucket["_ts"].append(float(ts))
    rollups: dict[str, dict] = {}
    for store, bucket in sorted(per_store.items()):
        samples = bucket.pop("_samples")
        stamps = bucket.pop("_ts")
        summary = {
            **bucket,
            "by_outcome": dict(sorted(bucket["by_outcome"].items())),
            "error_rate": (
                round(bucket["errors"] / bucket["requests"], 4)
                if bucket["requests"] else 0.0
            ),
            "total_ms": percentile_summary(samples),
        }
        span = max(stamps) - min(stamps) if len(stamps) > 1 else 0.0
        summary["rate_per_s"] = (
            round(bucket["requests"] / span, 3) if span > 0 else None
        )
        rollups[store] = summary
    return rollups


def join_traces(tagged: list[dict]) -> dict:
    """Group access records by ``trace_id``; chains sort by timestamp.

    Each trace summarizes to ``{records, sources, backends, spans,
    outcomes, failover, chain}`` where ``chain`` is the full record
    list in time order -- router record(s) plus every replica landing,
    which for a failover reconstructs the retry story end to end.
    """
    traces: dict[str, list[dict]] = {}
    for entry in tagged:
        if entry["kind"] != "access":
            continue
        trace_id = entry["record"].get("trace_id")
        if isinstance(trace_id, str) and trace_id:
            traces.setdefault(trace_id, []).append(entry)
    joined: dict[str, dict] = {}
    for trace_id, entries in traces.items():
        entries.sort(key=lambda e: (e["record"].get("ts") or 0.0,
                                    e["lineno"]))
        backends: list[str] = []
        spans: list[str] = []
        failover = False
        for entry in entries:
            record = entry["record"]
            for attempt in record.get("attempts", []):
                backend = attempt.get("backend")
                if backend and backend not in backends:
                    backends.append(backend)
                span = attempt.get("span_id")
                if span and span not in spans:
                    spans.append(span)
            if len(record.get("attempts", [])) > 1:
                failover = True
            span = record.get("span_id")
            if span and span not in spans:
                spans.append(span)
        joined[trace_id] = {
            "records": len(entries),
            "sources": sorted({entry["source"] for entry in entries}),
            "backends": backends,
            "spans": spans,
            "outcomes": [e["record"].get("outcome") for e in entries],
            "failover": failover,
            "chain": [
                {"source": e["source"], **e["record"]} for e in entries
            ],
        }
    return joined


def summarize_logs(
    paths: Iterable[str | Path],
    rotated: bool = True,
    trace: str | None = None,
    min_trace_records: int = 2,
) -> dict:
    """The full ``repro tail`` payload over a set of log files.

    ``traces`` keeps full chains only for multi-record traces (or the
    one asked for via *trace*) so a big log does not balloon the
    output; single-record traces are still counted in ``trace_count``.
    """
    tagged = collect_logs(paths, rotated=rotated)
    counts = {kind: 0 for kind in KINDS}
    for entry in tagged:
        counts[entry["kind"]] += 1
    joined = join_traces(tagged)
    if trace is not None:
        traces = {trace: joined[trace]} if trace in joined else {}
    else:
        traces = {
            trace_id: info for trace_id, info in joined.items()
            if info["records"] >= min_trace_records
        }
    payload = {
        "files": [str(path) for path in paths],
        "records": counts,
        "rollups": rollup_stores(tagged),
        "trace_count": len(joined),
        "traces": traces,
    }
    progress = [e["record"] for e in tagged if e["kind"] == "progress"]
    if progress:
        payload["progress"] = summarize_progress(progress)
    return payload


def summarize_progress(records: list[dict]) -> dict:
    """Per-run latest level/rows snapshot from progress records."""
    runs: dict[str, dict] = {}
    for record in records:
        run = str(record.get("run", "?"))
        info = runs.setdefault(run, {
            "events": 0, "level": None, "rows": None,
            "spills": 0, "checkpoints": 0, "done": False,
        })
        info["events"] += 1
        event = record.get("event")
        if "level" in record:
            info["level"] = record["level"]
        if "rows" in record:
            info["rows"] = record["rows"]
        if event == "spill":
            info["spills"] += 1
        elif event == "checkpoint":
            info["checkpoints"] += 1
        elif event == "done":
            info["done"] = True
    return dict(sorted(runs.items()))


def format_text(summary: dict) -> str:
    """Human-readable rendering of :func:`summarize_logs` output."""
    lines: list[str] = []
    counts = summary["records"]
    lines.append(
        "records: "
        + ", ".join(f"{counts[kind]} {kind}" for kind in KINDS
                    if counts[kind])
        or "records: none"
    )
    for store, roll in summary["rollups"].items():
        latency = roll["total_ms"]
        latency_text = (
            "latency p50/p90/p99 "
            f"{latency['p50']}/{latency['p90']}/{latency['p99']} ms"
            if latency else "no latency samples"
        )
        rate = roll["rate_per_s"]
        rate_text = f", {rate}/s" if rate is not None else ""
        lines.append(
            f"store {store}: {roll['requests']} requests{rate_text}, "
            f"{roll['errors']} errors "
            f"(rate {roll['error_rate']}), "
            f"{roll['failovers']} failovers, {latency_text}"
        )
    for run, info in summary.get("progress", {}).items():
        status = "done" if info["done"] else f"level {info['level']}"
        lines.append(
            f"progress {run}: {status}, rows {info['rows']}, "
            f"{info['spills']} spills, {info['checkpoints']} checkpoints"
        )
    for trace_id, info in summary["traces"].items():
        hops = " -> ".join(info["backends"]) or "-"
        lines.append(
            f"trace {trace_id}: {info['records']} records, "
            f"backends {hops}, outcomes {info['outcomes']}"
            + (" [failover]" if info["failover"] else "")
        )
        for record in info["chain"]:
            source = Path(record["source"]).name
            lines.append(
                f"  {source}: op={record.get('op')} "
                f"outcome={record.get('outcome')} "
                f"total_ms={record.get('total_ms')}"
                + (
                    f" attempts={len(record['attempts'])}"
                    if "attempts" in record else ""
                )
            )
    return "\n".join(lines)
