"""Unit tests for quantum state machines (repro.automata.machine)."""

import random
from fractions import Fraction

import pytest

from repro.errors import SpecificationError
from repro.core.circuit import Circuit
from repro.automata.machine import QuantumStateMachine
from repro.mvl.patterns import Pattern
from repro.mvl.values import Qv


@pytest.fixture
def coin_machine():
    """1 input wire (A), 1 state wire (B): input=1 randomizes the state."""
    return QuantumStateMachine(
        Circuit.from_names("V_BA", 2),
        input_wires=(0,),
        state_wires=(1,),
    )


class TestConstruction:
    def test_wires_must_partition(self):
        with pytest.raises(SpecificationError):
            QuantumStateMachine(
                Circuit.from_names("V_BA", 2), input_wires=(0,), state_wires=(0,)
            )
        with pytest.raises(SpecificationError):
            QuantumStateMachine(
                Circuit.from_names("V_BA", 2), input_wires=(0,), state_wires=()
            )

    def test_output_wires_default_to_inputs(self, coin_machine):
        assert coin_machine.output_wires == (0,)

    def test_output_wire_range_check(self):
        with pytest.raises(SpecificationError):
            QuantumStateMachine(
                Circuit.from_names("V_BA", 2),
                input_wires=(0,),
                state_wires=(1,),
                output_wires=(2,),
            )

    def test_initial_state_default_zero(self, coin_machine):
        assert coin_machine.state == (0,)

    def test_initial_state_custom(self):
        machine = QuantumStateMachine(
            Circuit.from_names("V_BA", 2),
            input_wires=(0,),
            state_wires=(1,),
            initial_state=(1,),
        )
        assert machine.state == (1,)

    def test_bad_initial_state(self):
        with pytest.raises(SpecificationError):
            QuantumStateMachine(
                Circuit.from_names("V_BA", 2),
                input_wires=(0,),
                state_wires=(1,),
                initial_state=(2,),
            )

    def test_n_states(self, coin_machine):
        assert coin_machine.n_states == 2


class TestSemantics:
    def test_output_pattern(self, coin_machine):
        assert coin_machine.output_pattern((0,), (1,)) == Pattern([0, 1])
        assert coin_machine.output_pattern((1,), (0,)) == Pattern([1, Qv.V0])

    def test_joint_distribution_deterministic(self, coin_machine):
        joint = coin_machine.joint_distribution((0,), (1,))
        assert joint == {((0,), (1,)): Fraction(1)}

    def test_joint_distribution_random(self, coin_machine):
        joint = coin_machine.joint_distribution((1,), (0,))
        assert joint == {
            ((1,), (0,)): Fraction(1, 2),
            ((1,), (1,)): Fraction(1, 2),
        }

    def test_joint_distribution_sums_to_one(self, coin_machine):
        for inp in ((0,), (1,)):
            for st in ((0,), (1,)):
                assert sum(coin_machine.joint_distribution(inp, st).values()) == 1

    def test_bad_bits_rejected(self, coin_machine):
        with pytest.raises(SpecificationError):
            coin_machine.output_pattern((2,), (0,))
        with pytest.raises(SpecificationError):
            coin_machine.joint_distribution((0, 1), (0,))


class TestStepping:
    def test_step_updates_state(self, coin_machine):
        rng = random.Random(4)
        step = coin_machine.step((1,), rng)
        assert step.state_before == (0,)
        assert step.state_after in ((0,), (1,))
        assert coin_machine.state == step.state_after

    def test_hold_input_preserves_state(self, coin_machine):
        rng = random.Random(4)
        coin_machine.reset()
        for _ in range(5):
            step = coin_machine.step((0,), rng)
            assert step.state_after == (0,)

    def test_run_sequence(self, coin_machine):
        rng = random.Random(8)
        steps = coin_machine.run([(1,), (0,), (1,)], rng)
        assert len(steps) == 3
        # The hold step keeps whatever the first step produced.
        assert steps[1].state_after == steps[0].state_after

    def test_reset(self, coin_machine):
        rng = random.Random(6)
        coin_machine.run([(1,)] * 4, rng)
        coin_machine.reset()
        assert coin_machine.state == (0,)

    def test_measured_bits_recorded(self, coin_machine):
        rng = random.Random(2)
        step = coin_machine.step((1,), rng)
        assert step.measured[0] == 1  # input wire passes through
        assert step.output_bits == (step.measured[0],)

    def test_repr(self, coin_machine):
        assert "inputs=(0,)" in repr(coin_machine)


class TestThreeWireMachine:
    def test_machine_with_two_state_wires(self):
        # V_BA, V_CA: enable randomizes both state wires.
        machine = QuantumStateMachine(
            Circuit.from_names("V_BA V_CA", 3),
            input_wires=(0,),
            state_wires=(1, 2),
        )
        joint = machine.joint_distribution((1,), (0, 0))
        assert len(joint) == 4
        assert machine.n_states == 4
        assert sum(joint.values()) == 1
