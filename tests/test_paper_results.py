"""Integration test: every quantitative claim of the paper in one place.

This is the reproduction's headline check.  Each test cites the paper
section it validates; EXPERIMENTS.md documents the two deviations
(|G[2]| and |G[3]| of Table 2).
"""

import pytest

from repro.core.circuit import Circuit
from repro.core.fmcf import find_minimum_cost_circuits
from repro.core.mce import express, express_all
from repro.core.theorems import paper_generator_group, verify_theorem2
from repro.core.universality import analyze_g4, is_universal, match_paper_representatives
from repro.gates import named
from repro.gates.gate import Gate
from repro.gates.truth_table import TruthTable
from repro.mvl.labels import label_space
from repro.sim.verify import verify_synthesis


class TestSection2:
    """Elementary gates and the value system."""

    def test_v_is_square_root_of_not(self):
        from repro.linalg import V, VDAG, X

        assert V @ V == X and VDAG @ VDAG == X
        assert (V @ VDAG).is_identity() and (VDAG @ V).is_identity()

    def test_value_identities(self):
        # V0 = V+1, V1 = V+0; V(V1) = V+(V0) = 0; V(V0) = V+(V1) = 1.
        from repro.linalg import V, VDAG, value_state
        from repro.mvl.values import Qv

        assert value_state(Qv.V0) == VDAG @ value_state(Qv.ONE)
        assert value_state(Qv.V1) == VDAG @ value_state(Qv.ZERO)
        assert V @ value_state(Qv.V1) == value_state(Qv.ZERO)
        assert VDAG @ value_state(Qv.V0) == value_state(Qv.ZERO)
        assert V @ value_state(Qv.V0) == value_state(Qv.ONE)
        assert VDAG @ value_state(Qv.V1) == value_state(Qv.ONE)


class TestTable1:
    def test_ctrl_v_truth_table_permutation(self):
        space = label_space(2, reduced=False, ordering="grouped")
        table = TruthTable.from_gate(Gate.v(1, 0, 2), space)
        assert table.permutation().cycle_string() == "(3,7,4,8)"


class TestSection3:
    """The 38-label formulation."""

    def test_domain_reduction_64_to_38(self, space3):
        assert space3.size == 38

    def test_printed_gate_permutations(self, library3):
        assert (
            library3.by_name("V_BA").permutation.cycle_string()
            == "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)"
        )
        assert (
            library3.by_name("V+_AB").permutation.cycle_string()
            == "(3,33,7,26)(4,34,8,27)(9,35,15,28)(10,36,16,29)"
        )
        assert (
            library3.by_name("F_CA").permutation.cycle_string()
            == "(5,6)(7,8)(17,18)(21,22)"
        )

    def test_printed_banned_sets(self, library3):
        banned = library3.banned_sets_paper()
        assert banned["N_A"] == tuple(range(25, 39))
        assert banned["N_B"] == (
            11, 12, 17, 18, 19, 20, 21, 22, 23, 24, 30, 31, 37, 38,
        )
        assert banned["N_C"] == (
            9, 10, 13, 14, 15, 16, 19, 20, 23, 24, 28, 29, 35, 36,
        )

    def test_group_orders(self):
        # |G| = 5040, |S8| = 40320.
        assert paper_generator_group().order() == 5040
        summary = verify_theorem2(3)
        assert summary["h_order"] == 40320
        assert summary["n_cosets"] == 8


class TestTable2:
    def test_full_cost_spectrum(self, cost_table7):
        paper = [1, 6, 30, 52, 84, 156, 398, 540]
        ours = cost_table7.g_sizes
        # Exact agreement at k = 0, 1, 4, 5, 6, 7.
        for k in (0, 1, 4, 5, 6, 7):
            assert ours[k] == paper[k], f"k={k}"
        # Documented deviations: 24 vs 30 at k=2, 51 vs 52 at k=3.
        assert ours[2] == 24
        assert ours[3] == 51

    def test_s8_row_is_eight_times_g_row(self, cost_table7):
        assert cost_table7.s8_sizes == [8 * g for g in cost_table7.g_sizes]

    def test_paper_pseudocode_recovers_52_at_cost_3(self, library3):
        table = find_minimum_cost_circuits(
            library3, cost_bound=3, paper_pseudocode=True
        )
        assert table.g_sizes[3] == 52


class TestSection5Gates:
    """G[4] structure and the g1..g4 family (Figures 4-7)."""

    def test_g4_decomposition(self, cost_table5):
        analysis = analyze_g4(cost_table5)
        assert len(analysis.feynman_only) == 60
        assert len(analysis.control_using) == 24
        assert len(analysis.universal) == 24
        assert [len(o) for o in analysis.orbits] == [6, 6, 6, 6]
        assert len(match_paper_representatives(analysis)) == 4

    def test_universality_claim(self):
        for gate in (named.PERES, named.G2, named.G3, named.G4):
            assert is_universal(gate)

    @pytest.mark.parametrize(
        "target,cascade",
        [
            (named.PERES, "V_CB F_BA V_CA V+_CB"),   # Figure 4
            (named.G2, "V+_BC F_CA V_BA V_BC"),      # Figure 5
            (named.G3, "V_CB F_BA V+_CA V_CB"),      # Figure 6
            (named.G4, "V_CB F_BA V_CA V_CB"),       # Figure 7
        ],
    )
    def test_printed_cascades_realize_printed_permutations(
        self, target, cascade
    ):
        circuit = Circuit.from_names(cascade, 3)
        assert circuit.binary_permutation() == target
        assert circuit.cost() == 4
        assert circuit.is_reasonable()

    @pytest.mark.parametrize(
        "target", [named.PERES, named.G2, named.G3, named.G4]
    )
    def test_family_synthesizes_at_cost_4(self, target, library3, search3):
        result = express(target, library3, search=search3)
        assert result.cost == 4
        assert verify_synthesis(result)


class TestPeresAndToffoli:
    """Figures 4, 8, 9 and the reported implementation counts."""

    def test_peres_two_implementations_adjoint_pair(self, library3, search3):
        results = express_all(named.PERES, library3, search=search3)
        assert len(results) == 2
        for result in results:
            assert result.cost == 4
            assert verify_synthesis(result)

    def test_figure8_is_adjoint_swap_of_figure4(self):
        figure4 = Circuit.from_names("V_CB F_BA V_CA V+_CB", 3)
        figure8 = Circuit.from_names("V+_CB F_BA V+_CA V_CB", 3)
        assert figure4.adjoint_swapped() == figure8
        assert figure8.binary_permutation() == named.PERES

    def test_toffoli_four_implementations(self, library3, search3):
        results = express_all(named.TOFFOLI, library3, search=search3)
        assert len(results) == 4
        for result in results:
            assert result.cost == 5
            assert verify_synthesis(result)

    @pytest.mark.parametrize(
        "cascade",
        [
            "F_BA V+_CB F_BA V_CA V_CB",   # Figure 9a
            "F_BA V_CB F_BA V+_CA V+_CB",  # Figure 9b
            "F_AB V+_CA F_AB V_CA V_CB",   # Figure 9c
            "F_AB V_CA F_AB V+_CA V+_CB",  # Figure 9d
        ],
    )
    def test_figure9_cascades(self, cascade):
        circuit = Circuit.from_names(cascade, 3)
        assert circuit.binary_permutation() == named.TOFFOLI
        assert circuit.cost() == 5
        assert circuit.is_reasonable()

    def test_figure9_pairs_are_adjoint_swaps(self):
        a = Circuit.from_names("F_BA V+_CB F_BA V_CA V_CB", 3)
        b = Circuit.from_names("F_BA V_CB F_BA V+_CA V+_CB", 3)
        assert a.adjoint_swapped() == b
        c = Circuit.from_names("F_AB V+_CA F_AB V_CA V_CB", 3)
        d = Circuit.from_names("F_AB V_CA F_AB V+_CA V+_CB", 3)
        assert c.adjoint_swapped() == d
