"""The fleet front: one address, N replicas, failures stay inside.

:class:`RouterService` duck-types
:class:`~repro.server.service.SynthesisService` (``start`` / ``close``
/ ``handle``), so the existing :class:`~repro.server.app.ReproServer`
front end -- sniffed HTTP/NDJSON framing, graceful drain, signal
handling -- serves a whole fleet unchanged: clients point their
existing :class:`~repro.client.ServeClient` at the router and cannot
tell it from a single server, except that backend crashes, hangs and
resets stop being their problem.

Routing and failure policy, per request:

* **Consistent hashing** (:class:`HashRing`): the request's store
  selector picks a stable preference order over the replicas, so a
  given store's queries concentrate on the same backend (warm caches)
  while every other replica remains a ready failover target, and
  adding or removing one replica only reshuffles ~1/N of the keys.
* **Circuit breakers** (:class:`CircuitBreaker`): consecutive
  transport failures open a per-backend breaker; an open breaker
  rejects candidates instantly (no connect timeouts on a corpse) until
  a cooldown passes, then exactly one **probe** request is let through
  (half-open) to decide between closing it and re-opening it.
* **Bounded retries with jittered backoff**: transport failures
  (connect refusal, dropped connection, per-attempt timeout) and
  server-fault responses (:data:`~repro.server.protocol.SERVER_FAULT_CODES`)
  fail over to the next replica in ring order -- safe to re-send
  blindly because every fleet operation is an idempotent read.
  Client-mistake errors (4xx codes) are returned immediately: they
  would fail identically on every replica.
* **Bounded in-flight, load shedding**: each backend accepts at most
  ``max_inflight`` concurrent round trips through the router.  When
  every admitted, breaker-closed replica is full the router *sheds*
  the request with a structured ``FLEET_OVERLOADED`` error (HTTP 503)
  instead of queueing -- under overload, fast refusal beats a growing
  invisible queue every time.

The supervisor (:mod:`repro.fleet.supervisor`) drives admission from
outside: :meth:`RouterService.set_admitted` ejects a replica from
candidate selection (it stays in the ring, so re-admission restores
the exact same key affinity) and :meth:`RouterService.reset_backend`
clears its breaker after a restart.

Byte-identity: the router re-encodes backend results with the same
``json.dumps`` settings the backends use, and ``json.loads`` preserves
object key order, so a response routed through the fleet is
byte-identical to one from the backend itself -- the chaos e2e tests
pin this.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import os
import random
import time

from repro._version import __version__
from repro.errors import FleetOverloadedError, ServerError
from repro.server.metrics import RollingWindow
from repro.server.protocol import (
    MAX_BODY,
    Request,
    SERVER_FAULT_CODES,
    error_payload,
    error_to_exception,
    parse_endpoint,
)
from repro.telemetry import (
    METRICS_CONTENT_TYPE,
    AccessLogWriter,
    MetricsRegistry,
    TraceSource,
)

#: Stream limit for router->backend connections.  Requests are capped
#: at MAX_BODY by the backends, but *responses* are legitimately
#: unbounded (a big batch returns more than it asked with), so the
#: router's read buffer must be far roomier than its write side.
ROUTER_STREAM_LIMIT = MAX_BODY * 8

#: Virtual points per backend on the hash ring: enough that the load
#: split across replicas stays within a few percent of even.
VIRTUAL_POINTS = 64

DEFAULT_RETRIES = 2
DEFAULT_BACKOFF = 0.05
MAX_RETRY_BACKOFF = 1.0
DEFAULT_ATTEMPT_TIMEOUT = 30.0
DEFAULT_MAX_INFLIGHT = 32
DEFAULT_POOL_SIZE = 4
DEFAULT_BREAKER_THRESHOLD = 3
DEFAULT_BREAKER_COOLDOWN = 1.0


def _ring_hash(text: str) -> int:
    """Stable 64-bit ring position for a name/key (sha256 prefix)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring over backend names.

    Each member contributes *points* virtual positions (``name#i``
    hashes), so keys spread evenly and removing one member only moves
    the keys that hashed to *its* arcs.  :meth:`order` returns the full
    preference order for a key -- element 0 is the home replica, the
    rest are failover targets in deterministic ring-walk order, so
    every router instance given the same membership routes and fails
    over identically.
    """

    def __init__(self, points: int = VIRTUAL_POINTS):
        if points < 1:
            raise ValueError("ring needs at least one point per member")
        self._points = points
        self._ring: list[tuple[int, str]] = []
        self._names: set[str] = set()

    @property
    def names(self) -> frozenset[str]:
        return frozenset(self._names)

    def add(self, name: str) -> None:
        if name in self._names:
            return
        self._names.add(name)
        for index in range(self._points):
            bisect.insort(self._ring, (_ring_hash(f"{name}#{index}"), name))

    def remove(self, name: str) -> None:
        if name not in self._names:
            return
        self._names.discard(name)
        self._ring = [(point, n) for point, n in self._ring if n != name]

    def order(self, key: str) -> list[str]:
        """All member names, preference-ordered for *key*."""
        if not self._ring:
            return []
        start = bisect.bisect_left(self._ring, (_ring_hash(key), ""))
        ordered: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._ring)):
            _point, name = self._ring[(start + offset) % len(self._ring)]
            if name not in seen:
                seen.add(name)
                ordered.append(name)
                if len(ordered) == len(self._names):
                    break
        return ordered


class CircuitBreaker:
    """Closed -> open -> half-open failure gate for one backend.

    *threshold* consecutive failures trip the breaker **open**: every
    ``allow()`` is refused for *cooldown* seconds, so a dead backend
    costs one failed burst, not a connect timeout per request forever.
    After the cooldown the breaker goes **half-open** and admits
    exactly one probe request; its outcome decides -- success closes
    the breaker, failure re-opens it for another cooldown.

    All state lives on the event-loop thread; *clock* is injectable so
    tests can step time explicitly.
    """

    def __init__(
        self,
        threshold: int = DEFAULT_BREAKER_THRESHOLD,
        cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        clock=time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probe_active = False
        #: Lifetime count of closed->open trips (ops visibility).
        self.opened_total = 0

    @property
    def state(self) -> str:
        """``"closed"`` / ``"open"`` / ``"half-open"`` (cooldown-aware)."""
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.cooldown
        ):
            return "half-open"
        return self._state

    def allow(self) -> bool:
        """May a request go to this backend right now?

        Has a side effect in the half-open state: a ``True`` answer
        *claims* the single probe slot, so callers must follow up with
        ``record_success``/``record_failure`` (or ``release_probe`` if
        the request never happened).
        """
        if self._state == "closed":
            return True
        if self._state == "open":
            if self._clock() - self._opened_at < self.cooldown:
                return False
            self._state = "half-open"
            self._probe_active = True
            return True
        if self._probe_active:
            return False
        self._probe_active = True
        return True

    def record_success(self) -> None:
        self._state = "closed"
        self._failures = 0
        self._probe_active = False

    def record_failure(self) -> None:
        if self._state == "half-open":
            self._trip()
            return
        self._failures += 1
        if self._state == "closed" and self._failures >= self.threshold:
            self._trip()

    def release_probe(self) -> None:
        """Un-claim a probe that was allowed but never completed."""
        if self._state == "half-open":
            self._probe_active = False

    def reset(self) -> None:
        """Back to pristine closed (a restarted backend earns trust)."""
        self.record_success()

    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._failures = 0
        self._probe_active = False
        self.opened_total += 1


class Backend:
    """One replica: endpoint, admission, breaker, pool and counters."""

    def __init__(
        self,
        name: str,
        endpoint: str,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        pool_size: int = DEFAULT_POOL_SIZE,
        breaker: CircuitBreaker | None = None,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.name = name
        self.endpoint = endpoint
        self.family, self.target = parse_endpoint(endpoint)
        #: Supervisor-controlled: an ejected backend stays in the ring
        #: (stable key affinity) but is skipped by candidate selection.
        self.admitted = True
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.max_inflight = max_inflight
        self.inflight = 0
        self.requests = 0
        self.failures = 0
        #: The replica's reported ``repro`` version, filled in by the
        #: supervisor's healthz probes -- fleet status compares these
        #: across replicas to flag version skew after a partial deploy.
        self.version: str | None = None
        self.recent_latency = RollingWindow()
        self._pool: list[tuple] = []
        self._pool_size = pool_size

    async def acquire(self):
        """A ``(reader, writer)`` to this backend: pooled or fresh."""
        while self._pool:
            reader, writer = self._pool.pop()
            if writer.is_closing():
                continue
            return reader, writer
        if self.family == "unix":
            return await asyncio.open_unix_connection(
                self.target, limit=ROUTER_STREAM_LIMIT
            )
        host, port = self.target
        return await asyncio.open_connection(
            host, port, limit=ROUTER_STREAM_LIMIT
        )

    def release(self, connection) -> None:
        """Return a healthy connection for reuse (or close the excess)."""
        _reader, writer = connection
        if len(self._pool) < self._pool_size and not writer.is_closing():
            self._pool.append(connection)
        else:
            writer.close()

    def discard(self, connection) -> None:
        """Drop a connection that saw a failure: never reuse it."""
        _reader, writer = connection
        try:
            writer.transport.abort()
        except Exception:  # noqa: BLE001 -- already torn down
            pass

    async def close(self) -> None:
        for _reader, writer in self._pool:
            writer.close()
        self._pool.clear()

    def describe(self) -> dict:
        payload = {
            "endpoint": self.endpoint,
            "admitted": self.admitted,
            "breaker": self.breaker.state,
            "breaker_opened_total": self.breaker.opened_total,
            "inflight": self.inflight,
            "max_inflight": self.max_inflight,
            "requests": self.requests,
            "failures": self.failures,
        }
        if self.version is not None:
            payload["version"] = self.version
        summary = self.recent_latency.summary(scale=1e3)
        if summary is not None:
            payload["latency_recent_ms"] = summary
        return payload


class RouterService:
    """Routes protocol requests across replicas; the fleet's "service".

    Args:
        backends: ``{name: endpoint}`` -- endpoints in any form
            :func:`~repro.server.protocol.parse_endpoint` accepts.
        retries: failover attempts *after* the first (transport
            failures and 5xx-mapped server faults only).
        backoff: base jittered backoff between failover attempts.
        attempt_timeout: per-attempt round-trip deadline; a hung
            backend costs one timeout, then its replicas take over.
        max_inflight: per-backend concurrent round-trip bound; beyond
            it the backend is skipped, and if *every* candidate is full
            the request is shed with ``FLEET_OVERLOADED``.
        breaker_threshold / breaker_cooldown: see :class:`CircuitBreaker`.
        seed: RNG seed for the retry jitter (deterministic tests).
        trace_source: mints ``trace_id``/``span_id`` (shared with the
            front-end :class:`~repro.server.app.ReproServer` by
            ``run_fleet``); defaults to a fresh urandom-backed source.
        access_log: append one NDJSON record per *routed* request
            (trace ID, per-attempt backend/span/outcome, total time);
            rotation mirrors the replica access logs.
    """

    def __init__(
        self,
        backends: dict[str, str],
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        attempt_timeout: float = DEFAULT_ATTEMPT_TIMEOUT,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        seed: int = 0,
        trace_source: TraceSource | None = None,
        access_log: str | None = None,
        access_log_max_bytes: int | None = None,
        access_log_keep: int | None = None,
    ):
        if not backends:
            raise ServerError("a fleet needs at least one backend")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self._retries = retries
        self._backoff = backoff
        self._attempt_timeout = attempt_timeout
        self._max_inflight = max_inflight
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._rng = random.Random(seed)
        self._ring = HashRing()
        self._backends: dict[str, Backend] = {}
        for name, endpoint in backends.items():
            self.add_backend(name, endpoint)
        self._started_monotonic = time.monotonic()
        self._started_epoch = round(time.time(), 3)
        self._next_id = 0
        self._traces = trace_source if trace_source is not None else TraceSource()
        # The router's own telemetry registry (served on `/metrics` by
        # the same front end that serves the replicas').  Healthz reads
        # the routed/failovers/shed values back out of these counters.
        self.telemetry = MetricsRegistry()
        reg = self.telemetry
        reg.gauge(
            "repro_build_info",
            "Build/version info as labels; value is always 1.",
            labels=("version",),
        ).set(1, version=__version__)
        reg.gauge(
            "repro_start_time_seconds",
            "Unix time the router object was created.",
            fn=lambda: self._started_epoch,
        )
        reg.gauge(
            "repro_uptime_seconds",
            "Seconds since the router object was created.",
            fn=lambda: round(time.monotonic() - self._started_monotonic, 3),
        )
        self._m_requests = reg.counter(
            "repro_router_requests_total",
            "Requests the router front end received, by operation.",
            labels=("op",),
        )
        self._m_routed = reg.counter(
            "repro_routed_total",
            "Requests routed toward a backend (healthz/metrics excluded).",
        )
        self._m_failovers = reg.counter(
            "repro_failovers_total",
            "Delivery attempts that failed and moved to another replica.",
        )
        self._m_shed = reg.counter(
            "repro_shed_total",
            "Requests shed with FLEET_OVERLOADED (every candidate full).",
        )
        self._h_attempt = reg.histogram(
            "repro_route_attempt_ms",
            "Successful round-trip time to a backend, by backend.",
            labels=("backend",),
        )
        reg.counter(
            "repro_backend_requests_total",
            "Delivery attempts sent, by backend.",
            labels=("backend",),
            fn=lambda: {
                name: b.requests for name, b in self._backends.items()
            },
        )
        reg.counter(
            "repro_backend_failures_total",
            "Failed delivery attempts, by backend.",
            labels=("backend",),
            fn=lambda: {
                name: b.failures for name, b in self._backends.items()
            },
        )
        reg.counter(
            "repro_backend_breaker_opened_total",
            "Circuit-breaker trips, by backend.",
            labels=("backend",),
            fn=lambda: {
                name: b.breaker.opened_total
                for name, b in self._backends.items()
            },
        )
        reg.gauge(
            "repro_backend_inflight",
            "Router-side in-flight round trips, by backend.",
            labels=("backend",),
            fn=lambda: {
                name: b.inflight for name, b in self._backends.items()
            },
        )
        reg.gauge(
            "repro_backend_admitted",
            "1 when the supervisor admits this backend, else 0.",
            labels=("backend",),
            fn=lambda: {
                name: int(b.admitted) for name, b in self._backends.items()
            },
        )
        self._log_writer: AccessLogWriter | None = None
        if access_log is not None:
            self._log_writer = AccessLogWriter(
                access_log,
                max_bytes=access_log_max_bytes,
                keep=access_log_keep,
                registry=reg,
            )

    # -- membership (the supervisor's control surface) ---------------------------------

    @property
    def backends(self) -> dict[str, Backend]:
        return dict(self._backends)

    def backend(self, name: str) -> Backend:
        try:
            return self._backends[name]
        except KeyError:
            raise ServerError(f"unknown backend {name!r}") from None

    def add_backend(self, name: str, endpoint: str) -> None:
        if name in self._backends:
            raise ServerError(f"duplicate backend {name!r}")
        self._backends[name] = Backend(
            name,
            endpoint,
            max_inflight=self._max_inflight,
            breaker=CircuitBreaker(
                self._breaker_threshold, self._breaker_cooldown
            ),
        )
        self._ring.add(name)

    def set_admitted(self, name: str, admitted: bool) -> bool:
        """Eject from / re-admit to candidate selection; True if changed."""
        backend = self.backend(name)
        changed = backend.admitted != admitted
        backend.admitted = admitted
        return changed

    def reset_backend(self, name: str) -> None:
        """Clear a backend's breaker (after a verified restart)."""
        self.backend(name).breaker.reset()

    # -- service protocol --------------------------------------------------------------

    async def start(self) -> None:
        """Open the access log; backend connections stay lazy."""
        if self._log_writer is not None:
            self._log_writer.start()

    async def close(self) -> None:
        for backend in self._backends.values():
            await backend.close()
        if self._log_writer is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._log_writer.close)

    async def handle(self, request: Request) -> dict:
        """Route one request; raises the mapped library exception."""
        self._m_requests.inc(op=request.op)
        if request.op == "healthz":
            return self._do_healthz()
        if request.op == "metrics":
            return self._do_metrics()
        self._m_routed.inc()
        # The router is the tracing edge: requests normally arrive with
        # a trace_id already minted by the front-end ReproServer (same
        # TraceSource); a bare RouterService mints its own here.
        trace_id = request.trace_id or self._traces.trace_id()
        attempts: list[dict] = []
        started_ts = round(time.time(), 6)
        started = time.perf_counter()
        try:
            result = await self._route(request, trace_id, attempts)
        except Exception as exc:
            self._log_request(request, trace_id, attempts,
                              error_payload(exc)[0]["code"],
                              started_ts, started)
            raise
        self._log_request(request, trace_id, attempts, "ok",
                          started_ts, started)
        return result

    async def _route(
        self, request: Request, trace_id: str, attempts: list[dict]
    ) -> dict:
        order = self._ring.order(request.store or "")
        self._next_id += 1
        payload: dict = {
            "id": self._next_id,
            "op": request.op,
            "params": request.params,
        }
        if request.store is not None:
            payload["store"] = request.store
        payload["trace_id"] = trace_id

        tried: set[str] = set()
        last_error: Exception | None = None
        delay = self._backoff
        for attempt in range(self._retries + 1):
            backend, saw_full = self._select(order, tried)
            if backend is None and last_error is not None and tried:
                # Every replica has been tried once; allow a second
                # round -- a just-restarted backend may answer now.
                tried.clear()
                backend, saw_full = self._select(order, tried)
            if backend is None:
                if saw_full:
                    self._m_shed.inc()
                    raise FleetOverloadedError(
                        "fleet overloaded: every admitted replica is at "
                        "its in-flight limit; request shed, retry with "
                        "backoff"
                    )
                if last_error is not None:
                    raise last_error
                raise ServerError(
                    "no admitted backends available to route to"
                )
            if attempt and delay > 0:
                await asyncio.sleep(delay * (0.5 + self._rng.random()))
                delay = min(delay * 2, MAX_RETRY_BACKOFF)
            tried.add(backend.name)
            backend.requests += 1
            backend.inflight += 1
            # One span per delivery attempt: the id a replica echoes
            # into its own access-log record, making the router's
            # attempt list join one-to-one with replica records.
            span_id = self._traces.span_id()
            payload["span_id"] = span_id
            entry = {"backend": backend.name, "span_id": span_id}
            attempts.append(entry)
            line = json.dumps(payload, separators=(",", ":")).encode() + b"\n"
            started = time.perf_counter()
            try:
                response = await asyncio.wait_for(
                    self._roundtrip(backend, line), self._attempt_timeout
                )
            except asyncio.CancelledError:
                backend.breaker.release_probe()
                entry["outcome"] = "cancelled"
                raise
            except (OSError, TimeoutError, ValueError,
                    asyncio.LimitOverrunError) as exc:
                backend.failures += 1
                backend.breaker.record_failure()
                self._m_failovers.inc()
                detail = str(exc) or type(exc).__name__
                entry["outcome"] = "transport-error"
                entry["detail"] = detail
                last_error = ServerError(
                    f"backend {backend.name} ({backend.endpoint}) "
                    f"failed: {detail}"
                )
                continue
            finally:
                backend.inflight -= 1
                entry["ms"] = round((time.perf_counter() - started) * 1e3, 3)
            backend.recent_latency.observe(time.perf_counter() - started)
            self._h_attempt.observe(entry["ms"], backend=backend.name)

            fault = self._classify(backend, payload["id"], response)
            if fault is not None:
                backend.failures += 1
                backend.breaker.record_failure()
                self._m_failovers.inc()
                entry["outcome"] = error_payload(fault)[0]["code"]
                last_error = fault
                continue
            backend.breaker.record_success()
            if response.get("ok"):
                entry["outcome"] = "ok"
                return response["result"]
            # A structured client-mistake error: the backend is healthy
            # and every replica would answer identically -- re-raise it
            # so the front end re-encodes the exact same payload.
            error = response.get("error") or {}
            entry["outcome"] = str(error.get("code", "internal"))
            raise error_to_exception(error)
        assert last_error is not None
        raise last_error

    def _log_request(
        self,
        request: Request,
        trace_id: str,
        attempts: list[dict],
        outcome: str,
        started_ts: float,
        started: float,
    ) -> None:
        """One router access record per routed request.

        Carries the same required fields as a replica record (so
        :func:`repro.io.load_access_log` reads both) plus the trace ID
        and the full attempt list; the router has no queue, so
        ``queue_wait_ms`` is structurally 0.
        """
        if self._log_writer is None:
            return
        total_ms = round((time.perf_counter() - started) * 1e3, 3)
        record = {
            "ts": started_ts,
            "op": request.op,
            "store": request.store,
            "id": request.id,
            "trace_id": trace_id,
            "queue_wait_ms": 0.0,
            "execute_ms": total_ms,
            "total_ms": total_ms,
            "outcome": outcome,
            "backend": attempts[-1]["backend"] if attempts else None,
            "attempts": attempts,
        }
        self._log_writer.submit(record)

    def _do_metrics(self) -> dict:
        """The ``metrics`` op: the router's registry as exposition text."""
        return {
            "content_type": METRICS_CONTENT_TYPE,
            "text": self.telemetry.render(),
        }

    # -- internals ---------------------------------------------------------------------

    def _select(
        self, order: list[str], tried: set[str]
    ) -> tuple[Backend | None, bool]:
        """First usable candidate in ring order, plus a saw-full flag.

        The breaker is consulted *last*: a half-open ``allow()`` claims
        the probe slot, so it must only run for a candidate that would
        otherwise be chosen.  ``saw_full`` is True only when at least
        one admitted, breaker-willing replica was skipped purely on the
        in-flight bound -- the precondition for shedding rather than
        erroring.
        """
        saw_full = False
        for name in order:
            backend = self._backends[name]
            if name in tried or not backend.admitted:
                continue
            if backend.inflight >= backend.max_inflight:
                if backend.breaker.state != "open":
                    saw_full = True
                continue
            if not backend.breaker.allow():
                continue
            return backend, saw_full
        return None, saw_full

    async def _roundtrip(self, backend: Backend, line: bytes) -> dict:
        """One request line out, one response object back (pooled)."""
        connection = await backend.acquire()
        reader, writer = connection
        ok = False
        try:
            writer.write(line)
            await writer.drain()
            reply = await reader.readline()
            if not reply:
                raise ConnectionError("backend closed the connection")
            response = json.loads(reply)
            if not isinstance(response, dict):
                raise ValueError("backend response is not a JSON object")
            ok = True
            return response
        finally:
            if ok:
                backend.release(connection)
            else:
                backend.discard(connection)

    def _classify(
        self, backend: Backend, request_id: int, response: dict
    ) -> Exception | None:
        """A response's fault, or None if it is trustworthy.

        Server faults (5xx codes), id mismatches and shape violations
        count against the breaker and are retried elsewhere; anything
        else -- success or a client-mistake error -- is final.
        """
        if response.get("id") != request_id:
            return ServerError(
                f"backend {backend.name} answered id "
                f"{response.get('id')!r} to request {request_id}"
            )
        if response.get("ok"):
            if not isinstance(response.get("result"), dict):
                return ServerError(
                    f"backend {backend.name} sent an ok response "
                    "without a result object"
                )
            return None
        error = response.get("error") or {}
        code = str(error.get("code", "internal")) if isinstance(
            error, dict
        ) else "internal"
        if code in SERVER_FAULT_CODES:
            return error_to_exception(error if isinstance(error, dict) else {})
        return None

    def _do_healthz(self) -> dict:
        """The router's own health view (answered locally, never routed)."""
        healthy = sum(
            1 for backend in self._backends.values()
            if backend.admitted and backend.breaker.state != "open"
        )
        return {
            "status": "ok" if healthy else "degraded",
            "role": "router",
            "pid": os.getpid(),
            "version": __version__,
            "start_time": self._started_epoch,
            "uptime_s": round(
                time.monotonic() - self._started_monotonic, 3
            ),
            "backends": {
                name: backend.describe()
                for name, backend in sorted(self._backends.items())
            },
            "healthy_backends": healthy,
            "admitted_backends": sum(
                1 for backend in self._backends.values() if backend.admitted
            ),
            # Read back from the telemetry counters (single source of
            # truth) so healthz and a /metrics scrape always agree.
            "routed": int(self._m_routed.value()),
            "failovers": int(self._m_failovers.value()),
            "shed": int(self._m_shed.value()),
            "retries": self._retries,
            "attempt_timeout_s": self._attempt_timeout,
        }
