"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidValueError(ReproError, ValueError):
    """A quaternary value, pattern or label was malformed or out of range."""


class InvalidGateError(ReproError, ValueError):
    """A gate specification was inconsistent (e.g. control == target)."""


class InvalidCircuitError(ReproError, ValueError):
    """A cascade violates the paper's constraints.

    The typical cause is a gate whose control (or a Feynman gate whose
    data wire) would carry a non-binary value ``V0``/``V1`` for some pure
    binary circuit input -- a *non-reasonable* product in the paper's
    terminology (Definition 1).
    """


class InvalidPermutationError(ReproError, ValueError):
    """An image array or cycle list does not describe a permutation."""


class SynthesisError(ReproError):
    """Synthesis failed for a reason other than the cost bound."""


class CostBoundExceededError(SynthesisError):
    """The target function has no realization within the cost bound ``cb``.

    Mirrors the paper's ``flag = 0`` outcome of the MCE algorithm: the
    minimal cost of the target exceeds the enumerated bound, so the search
    is inconclusive rather than the function being unrealizable.
    """

    def __init__(self, target_description: str, cost_bound: int):
        self.cost_bound = cost_bound
        #: Human-readable description of the target (kept so transports
        #: -- e.g. the ``repro serve`` JSON protocol -- can rebuild an
        #: identical exception on the other side of the wire).
        self.target_description = target_description
        super().__init__(
            f"no realization of {target_description} found with quantum "
            f"cost <= {cost_bound}; raise the cost bound to search further"
        )


class SpecificationError(ReproError, ValueError):
    """A synthesis specification (truth table / output spec) is invalid."""


class StoreError(ReproError):
    """A persisted closure store is malformed, corrupted or truncated."""


class StoreVersionError(StoreError):
    """A closure store uses a format version this build cannot read.

    Newer-format stores (or doctored version fields) are refused rather
    than misparsed; `repro store migrate` upgrades v1 stores to the
    current memory-mappable v2 layout.
    """


class StoreMismatchError(StoreError):
    """A closure store was built for a different library or cost model.

    The store format records fingerprints of the gate library and cost
    model the closure was expanded under; loading against anything else
    would silently return wrong costs and witnesses, so it is refused.
    """


class ServerError(ReproError):
    """The synthesis service failed outside of normal query semantics.

    Raised client-side for errors the ``repro serve`` protocol reports
    without a more specific :class:`ReproError` subclass (internal
    server faults, unreachable endpoints), and used as the base class
    for the protocol-level errors below.
    """


class ProtocolError(ServerError, ValueError):
    """A ``repro serve`` request or response violates the wire protocol.

    Covers malformed JSON lines, missing/unknown operations, invalid
    parameter shapes and unparseable HTTP framing.  The server maps this
    to a structured ``protocol`` error (HTTP 400) rather than dropping
    the connection, so a buggy client sees *why* it was refused.
    """


class FleetOverloadedError(ServerError):
    """The serving fleet shed this request instead of queueing it.

    Raised by the fleet router (:mod:`repro.fleet.router`) when every
    admitted replica is at its bounded in-flight limit: under overload
    the fleet's contract is to *shed* excess load with this structured
    error (wire code ``FLEET_OVERLOADED``, HTTP 503) rather than let
    requests pile up behind a saturated backend and hang.  Clients
    should back off and retry; results are never silently degraded.
    """


class FrozenSearchError(ReproError):
    """A mutating operation was attempted on a frozen search.

    :meth:`repro.core.search.CascadeSearch.freeze` pins a closure for
    concurrent read-only serving; expanding it further or switching
    kernels afterwards would race against in-flight queries, so those
    operations are refused explicitly.
    """


class SimulationError(ReproError):
    """A simulator was driven outside its supported state space."""


class NonBinaryControlError(SimulationError):
    """A control wire carried ``V0``/``V1`` during strict simulation.

    Strict simulators refuse to evaluate the paper's don't-care cases
    (which FMCF models as identity) because physically they are not
    identities; this error signals the cascade left the paper's
    binary-control regime.
    """
