"""Tests for the 4-qubit generalization of the paper's machinery."""

import pytest

from repro.core.fmcf import find_minimum_cost_circuits
from repro.core.mce import express
from repro.core.search import CascadeSearch
from repro.gates import named
from repro.gates.library import GateLibrary
from repro.mvl.labels import label_space
from repro.sim.verify import verify_synthesis


@pytest.fixture(scope="module")
def library4():
    return GateLibrary(4)


@pytest.fixture(scope="module")
def search4(library4):
    return CascadeSearch(library4, track_parents=True)


class TestSpace:
    def test_label_count(self):
        assert label_space(4).size == 176

    def test_library_size(self, library4):
        assert len(library4) == 36

    def test_banned_masks_cover_mixed_labels(self, library4):
        space = library4.space
        union = 0
        for wire in range(4):
            union |= space.banned_mask([wire])
        # Everything beyond the 16 binary labels is mixed on some wire.
        assert union == ((1 << 176) - 1) ^ 0xFFFF


class TestCostSpectrum:
    def test_g_sizes_to_cost_3(self, library4, search4):
        table = find_minimum_cost_circuits(library4, cost_bound=3, search=search4)
        assert table.g_sizes == [1, 12, 96, 542]

    def test_g1_is_the_twelve_feynman_gates(self, library4, search4):
        table = find_minimum_cost_circuits(library4, cost_bound=1, search=search4)
        expected = {
            named.cnot_target(t, c, 4)
            for t in range(4)
            for c in range(4)
            if t != c
        }
        assert set(table.members(1)) == expected

    def test_s16_factor(self, library4, search4):
        table = find_minimum_cost_circuits(library4, cost_bound=2, search=search4)
        assert table.s8_sizes == [16 * g for g in table.g_sizes]


class TestSynthesis:
    # Marker convention (see tests/conftest.py): the 4-qubit Toffoli
    # expands a 176-label closure to cost 5 -- seconds of work, so it
    # rides in the `slow` tier rather than the default selection.
    @pytest.mark.slow
    def test_embedded_toffoli(self, library4, search4):
        toffoli4 = named.from_output_functions(
            4,
            [
                lambda b: b[0],
                lambda b: b[1],
                lambda b: b[2] ^ (b[0] & b[1]),
                lambda b: b[3],
            ],
        )
        result = express(toffoli4, library4, cost_bound=5, search=search4)
        assert result.cost == 5
        assert verify_synthesis(result)

    def test_embedded_peres_on_high_wires(self, library4, search4):
        """Peres acting on wires B, C, D of the 4-qubit register."""
        peres_high = named.from_output_functions(
            4,
            [
                lambda b: b[0],
                lambda b: b[1],
                lambda b: b[2] ^ b[1],
                lambda b: b[3] ^ (b[1] & b[2]),
            ],
        )
        result = express(peres_high, library4, cost_bound=4, search=search4)
        assert result.cost == 4
        assert result.circuit.binary_permutation() == peres_high

    def test_not_layer_on_four_qubits(self, library4, search4):
        target = named.not_layer_permutation(0b1010, 4)
        result = express(target, library4, search=search4)
        assert result.cost == 0
        assert result.circuit.binary_permutation() == target

    def test_double_cnot_pair(self, library4, search4):
        """Two disjoint CNOTs cost 2 on four wires."""
        target = named.cnot_target(1, 0, 4) * named.cnot_target(3, 2, 4)
        result = express(target, library4, cost_bound=3, search=search4)
        assert result.cost == 2
        assert result.circuit.binary_permutation() == target
