"""Unit tests for quaternary patterns (repro.mvl.patterns)."""

import pytest
from fractions import Fraction

from repro.errors import InvalidValueError
from repro.mvl.patterns import (
    Pattern,
    all_patterns,
    binary_patterns,
    pattern_from_bits,
    pattern_from_int,
    pattern_from_string,
    pattern_measurement_distribution,
    pattern_to_int,
)
from repro.mvl.values import Qv


class TestConstruction:
    def test_from_values_and_ints(self):
        p = Pattern([1, Qv.V0, 0])
        assert p == (Qv.ONE, Qv.V0, Qv.ZERO)
        assert p.n_qubits == 3

    def test_pattern_is_tuple_subclass(self):
        p = Pattern([0, 1])
        assert isinstance(p, tuple)
        assert p[0] is Qv.ZERO and p[1] is Qv.ONE

    def test_from_bits(self):
        assert pattern_from_bits([1, 0, 1]) == Pattern([1, 0, 1])

    def test_from_bits_rejects_non_bits(self):
        with pytest.raises(InvalidValueError):
            pattern_from_bits([0, 2])

    def test_from_string(self):
        assert pattern_from_string("1,V0,0") == Pattern([1, Qv.V0, 0])
        assert pattern_from_string("1 V1") == Pattern([1, Qv.V1])

    def test_from_string_empty_raises(self):
        with pytest.raises(InvalidValueError):
            pattern_from_string("  ")


class TestIntEncoding:
    def test_roundtrip_all_three_qubit_codes(self):
        for code in range(64):
            assert pattern_to_int(pattern_from_int(code, 3)) == code

    def test_wire_zero_most_significant(self):
        # code 16 = 1*4^2: wire A carries value 1.
        assert pattern_from_int(16, 3) == Pattern([1, 0, 0])

    def test_out_of_range_raises(self):
        with pytest.raises(InvalidValueError):
            pattern_from_int(64, 3)
        with pytest.raises(InvalidValueError):
            pattern_from_int(-1, 3)

    def test_tuple_order_matches_int_order(self):
        codes = list(range(64))
        patterns = [pattern_from_int(c, 3) for c in codes]
        assert patterns == sorted(patterns)


class TestPredicates:
    def test_is_binary(self):
        assert Pattern([0, 1, 1]).is_binary
        assert not Pattern([0, Qv.V0, 1]).is_binary

    def test_has_one(self):
        assert Pattern([0, 1, Qv.V0]).has_one
        assert not Pattern([0, Qv.V0, Qv.V1]).has_one

    def test_is_permutable_includes_all_zero(self):
        assert Pattern([0, 0, 0]).is_permutable
        assert Pattern([0, 1, Qv.V0]).is_permutable
        assert not Pattern([0, Qv.V0, 0]).is_permutable

    def test_permutable_count_is_38_for_three_qubits(self):
        # The paper's 64 - 27 + 1 = 38.
        assert sum(p.is_permutable for p in all_patterns(3)) == 38

    def test_permutable_count_is_8_for_two_qubits(self):
        # 16 - 9 + 1 = 8.
        assert sum(p.is_permutable for p in all_patterns(2)) == 8


class TestTransforms:
    def test_with_value(self):
        p = Pattern([0, 0, 0]).with_value(1, Qv.V1)
        assert p == Pattern([0, Qv.V1, 0])

    def test_with_value_returns_new_pattern(self):
        p = Pattern([0, 0])
        q = p.with_value(0, 1)
        assert p == Pattern([0, 0]) and q == Pattern([1, 0])

    def test_bits(self):
        assert Pattern([1, 0, 1]).bits() == (1, 0, 1)

    def test_bits_of_mixed_raises(self):
        with pytest.raises(InvalidValueError):
            Pattern([1, Qv.V0]).bits()

    def test_binary_index(self):
        assert Pattern([1, 1, 0]).binary_index() == 6


class TestEnumerations:
    def test_all_patterns_counts(self):
        assert len(list(all_patterns(2))) == 16
        assert len(list(all_patterns(3))) == 64

    def test_binary_patterns_order(self):
        pats = list(binary_patterns(3))
        assert len(pats) == 8
        assert pats[0] == Pattern([0, 0, 0])
        assert pats[5] == Pattern([1, 0, 1])
        assert [p.binary_index() for p in pats] == list(range(8))


class TestMeasurementDistribution:
    def test_binary_pattern_deterministic(self):
        dist = pattern_measurement_distribution(Pattern([1, 0, 1]))
        assert dist == {(1, 0, 1): Fraction(1)}

    def test_one_mixed_wire_splits_in_half(self):
        dist = pattern_measurement_distribution(Pattern([1, Qv.V0, 0]))
        assert dist == {
            (1, 0, 0): Fraction(1, 2),
            (1, 1, 0): Fraction(1, 2),
        }

    def test_two_mixed_wires_give_uniform_quarter(self):
        dist = pattern_measurement_distribution(Pattern([Qv.V0, 1, Qv.V1]))
        assert len(dist) == 4
        assert all(p == Fraction(1, 4) for p in dist.values())

    def test_distribution_sums_to_one(self):
        for code in range(64):
            dist = pattern_measurement_distribution(pattern_from_int(code, 3))
            assert sum(dist.values()) == 1

    def test_zero_probability_outcomes_omitted(self):
        dist = pattern_measurement_distribution(Pattern([0, 0]))
        assert set(dist) == {(0, 0)}


class TestFormatting:
    def test_str(self):
        assert str(Pattern([1, Qv.V0, 0])) == "(1, V0, 0)"

    def test_repr_mentions_values(self):
        assert "V1" in repr(Pattern([Qv.V1, 0]))
