"""Gate model: quantum gates, their permutation representations, libraries.

* :mod:`repro.gates.kinds` -- the gate alphabet (V, V+, CNOT, NOT).
* :mod:`repro.gates.gate` -- a placed gate on named wires, with both its
  exact unitary and its label-permutation semantics.
* :mod:`repro.gates.library` -- the paper's 18-gate library (for 3 qubits)
  with banned masks, plus the general n-qubit construction.
* :mod:`repro.gates.truth_table` -- quaternary truth tables (Table 1).
* :mod:`repro.gates.named` -- classic reversible targets (Toffoli, Peres,
  Fredkin, the g1..g4 family) as permutations of the binary patterns.
"""

from repro.gates.kinds import GateKind
from repro.gates.gate import Gate
from repro.gates.library import GateLibrary, LibraryGate
from repro.gates.truth_table import TruthTable
from repro.gates import named

__all__ = [
    "GateKind",
    "Gate",
    "GateLibrary",
    "LibraryGate",
    "TruthTable",
    "named",
]
