"""The public API surface: imports, exports, version, packaging."""

import importlib

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_headline_symbols(self):
        # The names used in README/quickstart must exist at top level.
        for name in (
            "GateLibrary",
            "express",
            "express_all",
            "express_probabilistic",
            "find_minimum_cost_circuits",
            "named",
            "Circuit",
            "Permutation",
            "Qv",
            "LabelSpace",
        ):
            assert hasattr(repro, name), name


class TestSubpackageImports:
    def test_every_subpackage_imports_cleanly(self):
        for module in (
            "repro.mvl",
            "repro.linalg",
            "repro.perm",
            "repro.gates",
            "repro.core",
            "repro.sim",
            "repro.automata",
            "repro.baselines",
            "repro.render",
            "repro.io",
            "repro.cli",
            "repro.errors",
        ):
            importlib.import_module(module)

    def test_subpackage_alls_resolve(self):
        for module_name in (
            "repro.mvl",
            "repro.linalg",
            "repro.perm",
            "repro.gates",
            "repro.core",
            "repro.sim",
            "repro.automata",
            "repro.baselines",
            "repro.render",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name}"


class TestDocumentation:
    def test_every_public_module_has_docstring(self):
        import pkgutil

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            assert module.__doc__, info.name

    def test_quickstart_snippet_from_readme(self):
        from repro import GateLibrary, express, named

        library = GateLibrary(n_qubits=3)
        result = express(named.TOFFOLI, library)
        assert result.cost == 5
