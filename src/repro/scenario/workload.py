"""Seeded workload generation and the threaded scenario runner.

:func:`generate` is a *pure function* of ``(spec, seed, requests)``:
the same inputs always yield the same :class:`PlannedRequest` stream --
op sequence, targets, store selectors, arrival offsets, everything.
That determinism is the whole point: two PRs that both run
``repro load steady_interactive --seed 7`` are judged under identical
traffic, and ``tests/test_scenario.py`` pins it.  All randomness comes
from one ``random.Random(seed)`` (Mersenne Twister, whose sequence is
guaranteed stable across Python versions and platforms), consumed in a
fixed per-request order.

:func:`run_scenario` drives a planned stream against a live server or
fleet front: ``concurrency`` worker threads, each with its own
persistent connection from a :class:`~repro.client.ClientPool`, claim
requests in stream order.  Errors are *data*, not failures -- every
request yields a :class:`ScenarioSample` whose ``outcome`` is ``"ok"``
or the structured wire code (``cost-bound-exceeded``,
``FLEET_OVERLOADED``, ...), the same classification the server's own
access log records, so a pathological scenario can assert that its
expected errors happened.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.client import DEFAULT_TIMEOUT, ClientPool
from repro.errors import ReproError
from repro.server.protocol import error_payload

from .spec import ScenarioSpec


@dataclass(frozen=True)
class PlannedRequest:
    """One request of a generated stream (pure data, no sockets)."""

    index: int
    #: Arrival offset from scenario start, seconds (0.0 under closed
    #: arrival); only paces the run when timing is requested.
    at_s: float
    op: str
    #: Store selector to send, or None (single-store server).
    store: str | None
    #: Query params (target/targets/cost_bound/...), JSON-ready.
    params: dict


@dataclass(frozen=True)
class ScenarioSample:
    """One executed request: what happened and how long it took."""

    index: int
    op: str
    store: str | None
    #: ``"ok"`` or the structured error code the call raised.
    outcome: str
    latency_s: float


def planned_to_dict(request: PlannedRequest) -> dict:
    """JSON form of one planned request (``repro load --dry-run``)."""
    return {
        "index": request.index,
        "at_s": round(request.at_s, 6),
        "op": request.op,
        "store": request.store,
        "params": request.params,
    }


def _arrival_offset(spec: ScenarioSpec, index: int) -> float:
    arrival = spec.arrival
    if arrival.shape == "steady":
        return index / arrival.rate
    if arrival.shape == "bursty":
        return (index // arrival.burst) * arrival.pause
    return 0.0


def generate(
    spec: ScenarioSpec,
    seed: int | None = None,
    requests: int | None = None,
) -> list[PlannedRequest]:
    """The deterministic request stream for *spec* (see module doc).

    *seed* and *requests* default to the spec's own values; passing
    them overrides without mutating the spec (the CLI's ``--seed`` /
    ``--requests``).
    """
    rng = random.Random(spec.seed if seed is None else seed)
    count = spec.requests if requests is None else requests
    ops = [op for op, _weight in spec.ops]
    op_weights = [weight for _op, weight in spec.ops]
    store_names = [name for name, _weight in spec.stores]
    store_weights = [weight for _name, weight in spec.stores]
    base_params = dict(spec.params)
    targets = list(spec.targets)

    plan: list[PlannedRequest] = []
    for index in range(count):
        op = rng.choices(ops, weights=op_weights)[0]
        store = None
        params: dict = {}
        if op != "healthz" and store_names:
            store = rng.choices(store_names, weights=store_weights)[0]
        if op == "synth":
            params = dict(base_params)
            params["target"] = rng.choice(targets)
        elif op == "synth-batch":
            params = dict(base_params)
            params["targets"] = rng.choices(targets, k=spec.batch_size)
        elif op == "cost-table":
            params = dict(base_params)
            params.pop("allow_not", None)  # not a cost-table param
        plan.append(PlannedRequest(
            index=index,
            at_s=_arrival_offset(spec, index),
            op=op,
            store=store,
            params=params,
        ))
    return plan


def run_scenario(
    spec: ScenarioSpec,
    address: str,
    seed: int | None = None,
    requests: int | None = None,
    concurrency: int | None = None,
    timing: bool = False,
    retries: int = 0,
    timeout: float = DEFAULT_TIMEOUT,
) -> tuple[list[PlannedRequest], list[ScenarioSample], float]:
    """Drive *spec*'s stream against *address*; returns the evidence.

    Returns ``(plan, samples, wall_s)``: the generated stream, one
    sample per request in stream order, and the wall-clock duration.
    With ``timing=True`` workers hold each request until its planned
    arrival offset; otherwise the run is closed-loop (as fast as
    ``concurrency`` connections allow).  ``retries`` is handed to the
    underlying clients (safe: every service op is an idempotent read)
    -- the chaos scenarios rely on it to make a replica crash
    client-invisible.

    Worker exceptions that are *not* structured service errors (bugs,
    keyboard interrupts) propagate to the caller after the pool drains.
    """
    plan = generate(spec, seed=seed, requests=requests)
    workers = spec.concurrency if concurrency is None else concurrency
    workers = max(1, min(workers, len(plan)))
    samples: list[ScenarioSample | None] = [None] * len(plan)
    cursor = iter(range(len(plan)))
    cursor_lock = threading.Lock()
    failures: list[BaseException] = []
    start = time.monotonic()

    def worker(pool: ClientPool) -> None:
        client = pool.get()
        while True:
            with cursor_lock:
                index = next(cursor, None)
            if index is None:
                return
            request = plan[index]
            if timing and request.at_s > 0:
                delay = start + request.at_s - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            began = time.perf_counter()
            try:
                client.call(request.op, store=request.store,
                            **request.params)
                outcome = "ok"
            except ReproError as exc:
                outcome = error_payload(exc)[0]["code"]
            samples[index] = ScenarioSample(
                index=index,
                op=request.op,
                store=request.store,
                outcome=outcome,
                latency_s=time.perf_counter() - began,
            )

    def guarded(pool: ClientPool) -> None:
        try:
            worker(pool)
        except BaseException as exc:  # noqa: BLE001 -- re-raised below
            failures.append(exc)

    with ClientPool(address, timeout=timeout, retries=retries) as pool:
        threads = [
            threading.Thread(target=guarded, args=(pool,), daemon=True)
            for _ in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    wall_s = time.monotonic() - start
    if failures:
        raise failures[0]
    done = [sample for sample in samples if sample is not None]
    return plan, done, wall_s
